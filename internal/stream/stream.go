// Package stream is the online analysis pipeline: it consumes an
// execution's record stream *while the program runs* and performs the
// debugging phase's graph construction and race detection incrementally —
// the event-stream-module architecture DeWiz and MAD argue for, grafted
// onto the paper's §6 machinery.
//
// The pipeline is three stages. The incremental graph builder
// (parallel.NewStreamBuilder) turns the record stream into clocked
// synchronization nodes and internal edges. The frontier detector (this
// package's Pipeline) checks each completed edge against the *unretired*
// edges indexed per shared variable, then retires edges the sliding
// happens-before frontier has passed: once every live process's latest
// event happens-after an edge's end node, no future edge can be
// simultaneous with it (any future edge's start chains through some live
// process's current latest event), so the edge leaves the index and its
// memory — the pipeline's high-water mark is bounded by the frontier
// width, not the run length. The early-abort stage is the caller's: the
// OnRace callback fires the moment a race is classified, and
// ppd.Options.StopAtFirstRace uses it to context-cancel the VM.
//
// Soundness of arrival-time checking: edges are checked when they
// complete, against every unretired edge. A retired edge r cannot race
// with a later-arriving edge e: at r's retirement, e's process either had
// events (its then-latest event L satisfied r.end → L, and e.start is L
// or later in program order, so r → e), or did not exist yet (its start
// chains through a live ancestor's spawn, which happens-after that
// ancestor's then-latest event, hence after r.end). Every cross-process
// conflicting pair is therefore classified exactly once, and the final
// race set equals the batch detector's.
//
// Oracle equivalence: after renumbering the (few) edges retained by
// races into the global ID space — global IDs are contiguous per process
// in pid order, so (PID, local index) order is global order — the
// canonicalized result is byte-identical to race.IndexedMasked over the
// batch-built graph of the same records, at any batch size. The golden
// gate TestOnlineRacesByteIdentical and FuzzStreamBatches pin this.
package stream

import (
	"fmt"

	"ppd/internal/bitset"
	"ppd/internal/logging"
	"ppd/internal/obs"
	"ppd/internal/parallel"
	"ppd/internal/race"
)

// Config parameterizes a Pipeline.
type Config struct {
	// NShared is the GlobalID universe size (len(Program.Globals)).
	NShared int

	// Mask is the static conflict mask (analysis.ConflictMatrix.Mask):
	// per-variable buckets outside it are never materialized. nil scans
	// everything. Must match the batch oracle's mask for equivalence.
	Mask *bitset.Set

	// VarNames resolves GlobalIDs to source names in race reports
	// (parallel.Graph.VarNames's counterpart).
	VarNames []string

	// OnRace, when non-nil, fires once per classified race the moment it
	// is found, while the program is still running. It runs on the
	// pipeline's feeding goroutine; implementations should be quick or
	// hand off.
	OnRace func(RaceEvent)

	// Sink receives the pipeline counters (stream.batches,
	// stream.frontier.highwater, stream.events.retired,
	// stream.races.online, stream.pairs, stream.mask.pruned), folded in
	// once at Finish. nil disables observation.
	Sink *obs.Sink
}

// RaceEvent is one race as reported online. It carries process IDs and
// per-process internal-edge indices — identifiers that are stable from the
// moment of detection (global edge IDs only exist after the run ends).
type RaceEvent struct {
	Kind  race.Conflict
	PID1  int // 0-based process ID of the first (canonically ordered) edge
	Edge1 int // index of that edge within its process
	PID2  int
	Edge2 int
	Vars  []int
	Names []string
}

// String renders the event for live monitors.
func (ev RaceEvent) String() string {
	vars := fmt.Sprintf("%v", ev.Vars)
	if len(ev.Names) == len(ev.Vars) && len(ev.Names) > 0 {
		vars = ""
		for i, n := range ev.Names {
			if i > 0 {
				vars += ","
			}
			vars += n
		}
	}
	return fmt.Sprintf("%s race: P%d edge %d vs P%d edge %d on %s",
		ev.Kind, ev.PID1+1, ev.Edge1, ev.PID2+1, ev.Edge2, vars)
}

// Result is the pipeline's final output.
type Result struct {
	// Races is the canonical race set: deduped, renumbered into the
	// global ID space, sorted — byte-identical (via race.Report) to the
	// batch detector over the same records.
	Races []*race.Race

	Batches   int64 // record batches fed
	Events    int64 // synchronization nodes built
	Retired   int64 // edges retired by the frontier before the run ended
	Highwater int64 // max unretired edges at any point (the memory bound)
	Online    int64 // races classified online (pre-dedup count)
	Pairs     int64 // candidate pairs tested
	Pruned    int64 // per-edge variable touches skipped by the mask
}

// edgeRef is one unretired internal edge with its endpoint nodes (the
// clock carriers for the simultaneity test).
type edgeRef struct {
	e          *parallel.InternalEdge
	start, end *parallel.Event // start nil for a process's first edge
}

// pairKey identifies a canonically-oriented cross-process edge pair.
type pairKey struct {
	pid1, id1, pid2, id2 int
}

// Pipeline is the frontier race detector. Not safe for concurrent use:
// Feed and Finish must come from one goroutine (the Tee serializes).
type Pipeline struct {
	cfg Config
	b   *parallel.Builder

	last    []*parallel.Event // latest node per process
	exited  []bool            // process has logged its exit node
	pending [][]*edgeRef      // unretired edges per process, FIFO

	readers [][]*edgeRef // unretired reader edges per shared variable
	writers [][]*edgeRef // unretired writer edges per shared variable

	// seen marks pairs that already produced races, so a pair sharing
	// several variables is classified once (the batch path classifies all
	// three kinds at first contact too, then dedups). Bounded by the race
	// count, not the pair count: ordered pairs never enter.
	seen  map[pairKey]bool
	races []*race.Race

	width    int // unretired edges now
	result   *Result
	counters Result
	finished bool
}

// New returns a pipeline over cfg.
func New(cfg Config) *Pipeline {
	p := &Pipeline{
		cfg:     cfg,
		seen:    make(map[pairKey]bool),
		readers: make([][]*edgeRef, cfg.NShared),
		writers: make([][]*edgeRef, cfg.NShared),
	}
	p.b = parallel.NewStreamBuilder(cfg.NShared, p)
	return p
}

// Feed consumes one batch of records in generation order (see
// parallel.Builder's stream mode). The builder calls back into OnSync for
// every node whose clock becomes final.
func (p *Pipeline) Feed(batch []parallel.FeedRecord) {
	p.counters.Batches++
	p.b.Feed(batch)
}

// OnSync implements parallel.Observer: one completed synchronization node
// and the internal edge it terminates. Order matters: the edge is checked
// against the frontier *before* the node advances it — a frontier advanced
// first could retire edges this edge still races with.
func (p *Pipeline) OnSync(ev *parallel.Event, edge *parallel.InternalEdge, start *parallel.Event) {
	p.counters.Events++
	er := &edgeRef{e: edge, start: start, end: ev}

	// Stage 1: check against the unretired index, mask-pruned.
	edge.Writes.ForEach(func(v int) {
		if p.cfg.Mask != nil && !p.cfg.Mask.Has(v) {
			p.counters.Pruned++
			return
		}
		p.checkAgainst(p.writers[v], er)
		p.checkAgainst(p.readers[v], er)
	})
	edge.Reads.ForEach(func(v int) {
		if p.cfg.Mask != nil && !p.cfg.Mask.Has(v) {
			p.counters.Pruned++
			return
		}
		p.checkAgainst(p.writers[v], er)
	})

	// Stage 2: join the frontier.
	p.insert(er)

	// Stage 3: advance the frontier and retire what it passed.
	pid := ev.PID
	for pid >= len(p.last) {
		p.last = append(p.last, nil)
		p.exited = append(p.exited, false)
		p.pending = append(p.pending, nil)
	}
	p.last[pid] = ev
	if ev.Kind == logging.RecExit {
		p.exited[pid] = true
	}
	p.retire()
}

// checkAgainst tests er against every edge in bucket (same-process pairs
// and already-classified pairs skip early).
func (p *Pipeline) checkAgainst(bucket []*edgeRef, er *edgeRef) {
	for _, other := range bucket {
		if other.e.PID == er.e.PID {
			continue
		}
		p.counters.Pairs++
		if !simultaneous(other, er) {
			continue
		}
		// Canonical orientation: (PID, local index) order is final global
		// ID order, since global IDs are contiguous per process in pid
		// order.
		a, b := other, er
		if a.e.PID > b.e.PID || (a.e.PID == b.e.PID && a.e.ID > b.e.ID) {
			a, b = b, a
		}
		key := pairKey{a.e.PID, a.e.ID, b.e.PID, b.e.ID}
		if p.seen[key] {
			continue
		}
		rs := race.CheckOrientedPair(a.e, b.e, p.cfg.VarNames)
		if len(rs) == 0 {
			continue // unreachable via a shared bucket, kept for safety
		}
		p.seen[key] = true
		p.races = append(p.races, rs...)
		p.counters.Online += int64(len(rs))
		if p.cfg.OnRace != nil {
			for _, r := range rs {
				p.cfg.OnRace(RaceEvent{
					Kind: r.Kind,
					PID1: r.E1.PID, Edge1: r.E1.ID,
					PID2: r.E2.PID, Edge2: r.E2.ID,
					Vars: r.Vars, Names: r.Names,
				})
			}
		}
	}
}

// insert adds er to the per-variable index and its process's pending
// queue.
func (p *Pipeline) insert(er *edgeRef) {
	er.e.Writes.ForEach(func(v int) {
		if p.cfg.Mask == nil || p.cfg.Mask.Has(v) {
			p.writers[v] = append(p.writers[v], er)
		}
	})
	er.e.Reads.ForEach(func(v int) {
		if p.cfg.Mask == nil || p.cfg.Mask.Has(v) {
			p.readers[v] = append(p.readers[v], er)
		}
	})
	pid := er.e.PID
	for pid >= len(p.pending) {
		p.last = append(p.last, nil)
		p.exited = append(p.exited, false)
		p.pending = append(p.pending, nil)
	}
	p.pending[pid] = append(p.pending[pid], er)
	p.width++
	if int64(p.width) > p.counters.Highwater {
		p.counters.Highwater = int64(p.width)
	}
}

// retire pops every process's pending queue while the head is behind the
// frontier: an edge retires once its end node happens-before every live
// process's latest node (processes spawned later chain through a live
// ancestor's future spawn, so they cannot reach back behind the cut).
func (p *Pipeline) retire() {
	for q := range p.pending {
		for len(p.pending[q]) > 0 && p.retireable(q, p.pending[q][0]) {
			er := p.pending[q][0]
			p.pending[q][0] = nil // release the ref promptly
			p.pending[q] = p.pending[q][1:]
			p.remove(er)
			p.width--
			p.counters.Retired++
		}
	}
}

// retireable reports whether every live process other than q has advanced
// past er's end node.
func (p *Pipeline) retireable(q int, er *edgeRef) bool {
	for r, lastEv := range p.last {
		if r == q || lastEv == nil || p.exited[r] {
			continue
		}
		if !happensBefore(er.end, lastEv) {
			return false
		}
	}
	return true
}

// remove deletes er from the per-variable index (swap-remove; bucket
// order is not part of the contract — the final set is canonicalized).
func (p *Pipeline) remove(er *edgeRef) {
	del := func(bucket []*edgeRef) []*edgeRef {
		for i, x := range bucket {
			if x == er {
				bucket[i] = bucket[len(bucket)-1]
				bucket[len(bucket)-1] = nil
				return bucket[:len(bucket)-1]
			}
		}
		return bucket
	}
	er.e.Writes.ForEach(func(v int) {
		if p.cfg.Mask == nil || p.cfg.Mask.Has(v) {
			p.writers[v] = del(p.writers[v])
		}
	})
	er.e.Reads.ForEach(func(v int) {
		if p.cfg.Mask == nil || p.cfg.Mask.Has(v) {
			p.readers[v] = del(p.readers[v])
		}
	})
}

// Finish flushes the builder, renumbers the race-retained edges into the
// global ID space, canonicalizes, and folds the counters into the sink.
// Idempotent; must be called after the last Feed (the Tee's Close
// guarantees the ordering).
func (p *Pipeline) Finish() *Result {
	if p.finished {
		return p.result
	}
	p.finished = true
	p.b.Flush()

	evCounts, edgeCounts := p.b.Counts()
	evOff := make([]int, len(evCounts))
	edgeOff := make([]int, len(edgeCounts))
	for i := 1; i < len(evCounts); i++ {
		evOff[i] = evOff[i-1] + evCounts[i-1]
		edgeOff[i] = edgeOff[i-1] + edgeCounts[i-1]
	}
	renumbered := make(map[*parallel.InternalEdge]bool)
	patch := func(e *parallel.InternalEdge) {
		if renumbered[e] {
			return
		}
		renumbered[e] = true
		e.ID += edgeOff[e.PID]
		if e.Start >= 0 {
			e.Start += parallel.EventID(evOff[e.PID])
		}
		e.End += parallel.EventID(evOff[e.PID])
	}
	for _, r := range p.races {
		patch(r.E1)
		patch(r.E2)
	}
	p.counters.Races = race.Canonicalize(p.races)
	p.result = &p.counters

	if sink := p.cfg.Sink; sink != nil {
		sink.Counter("stream.batches").Add(p.counters.Batches)
		sink.Counter("stream.frontier.highwater").Add(p.counters.Highwater)
		sink.Counter("stream.events.retired").Add(p.counters.Retired)
		sink.Counter("stream.races.online").Add(p.counters.Online)
		sink.Counter("stream.pairs").Add(p.counters.Pairs)
		sink.Counter("stream.mask.pruned").Add(p.counters.Pruned)
	}
	return p.result
}

// clockAt reads a growable clock with implicit zeros: a streaming node's
// clock only reaches as far as the processes it has heard from, which is
// exactly the batch clock with the trailing zeros elided.
func clockAt(c []int, i int) int {
	if i < len(c) {
		return c[i]
	}
	return 0
}

func clocksEqual(a, b []int) bool {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if clockAt(a, i) != clockAt(b, i) {
			return false
		}
	}
	return true
}

// happensBefore is parallel.Graph.HappensBefore over growable clocks.
func happensBefore(a, b *parallel.Event) bool {
	if clockAt(a.Clock, a.PID) > clockAt(b.Clock, a.PID) {
		return false
	}
	return !clocksEqual(a.Clock, b.Clock)
}

// simultaneous is Definition 6.1 over edge refs: neither edge's end node
// happens-before the other's start node. Cross-process edges never share
// nodes, so the batch EdgeHB's same-node shortcut cannot apply; a nil
// start is a process's initial edge, which nothing precedes.
func simultaneous(x, y *edgeRef) bool {
	if y.start != nil && happensBefore(x.end, y.start) {
		return false
	}
	if x.start != nil && happensBefore(y.end, x.start) {
		return false
	}
	return true
}
