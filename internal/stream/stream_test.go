package stream_test

import (
	"fmt"
	"io"
	"testing"

	"ppd/internal/bitset"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/logging"
	"ppd/internal/parallel"
	"ppd/internal/race"
	"ppd/internal/stream"
	"ppd/internal/vm"
	"ppd/internal/workloads"
)

// capturedRun is one logged execution observed two ways at once: the tap
// copies the sync-relevant records in generation order (exactly what the
// production tee sees), and the retained log is the input to the batch
// oracle. Both views come from the same run, so any divergence between
// the online pipeline and the batch detector is the pipeline's fault, not
// schedule noise.
type capturedRun struct {
	recs  []parallel.FeedRecord
	v     *vm.VM
	art   *compile.Artifacts
	mask  *bitset.Set
	names []string
}

func captureRun(tb testing.TB, name, src string, seed int64, quantum int) *capturedRun {
	tb.Helper()
	art, err := compile.CompileSource(name, src, eblock.DefaultConfig())
	if err != nil {
		tb.Fatalf("compile %s: %v", name, err)
	}
	cr := &capturedRun{art: art}
	v := vm.New(art.Prog, vm.Options{
		Mode: vm.ModeLog, Seed: seed, Quantum: quantum, Output: io.Discard,
		Tap: func(pid, idx int, r *logging.Record) {
			switch r.Kind {
			case logging.RecSync, logging.RecStart, logging.RecExit:
			default:
				return
			}
			cr.recs = append(cr.recs, parallel.FeedRecord{
				PID:     pid,
				RecIdx:  idx,
				Kind:    r.Kind,
				Op:      r.Op,
				Obj:     r.Obj,
				Stmt:    r.Stmt,
				Gsn:     r.Gsn,
				FromGsn: r.FromGsn,
				Reads:   append([]int(nil), r.Reads...),
				Writes:  append([]int(nil), r.Writes...),
			})
		},
	})
	if err := v.Run(); err != nil {
		tb.Fatalf("run %s: %v", name, err)
	}
	cr.v = v
	cr.names = make([]string, len(art.Prog.Globals))
	for i, g := range art.Prog.Globals {
		cr.names[i] = g.Name
	}
	cr.mask = art.Vet(nil).Conflicts.Mask()
	return cr
}

func (cr *capturedRun) oracleGraph() *parallel.Graph {
	g := parallel.Build(cr.v.Log, len(cr.art.Prog.Globals))
	g.VarNames = cr.names
	return g
}

// onlineResult replays the captured record stream through a fresh
// pipeline, batch records at a time (batch <= 0 feeds everything in one
// call).
func onlineResult(cr *capturedRun, batch int) *stream.Result {
	p := stream.New(stream.Config{
		NShared:  len(cr.art.Prog.Globals),
		Mask:     cr.mask,
		VarNames: cr.names,
	})
	feedBatches(p, cr.recs, batch)
	return p.Finish()
}

func feedBatches(p *stream.Pipeline, recs []parallel.FeedRecord, batch int) {
	if batch <= 0 {
		p.Feed(recs)
		return
	}
	for i := 0; i < len(recs); i += batch {
		j := min(i+batch, len(recs))
		p.Feed(recs[i:j])
	}
}

// TestOnlineRacesByteIdentical is the pipeline's acceptance gate: over
// the full workload × (seed, quantum) matrix, the online detector's final
// race set — fed at every batch size — renders byte-identically
// (race.Report) to the batch oracle, and the batch oracle itself is
// agreed on by the indexed and parallel detectors at several worker
// widths. The batch path stays the golden reference; streaming is an
// execution strategy, not a different answer.
func TestOnlineRacesByteIdentical(t *testing.T) {
	cases := workloads.Standard()
	cases = append(cases,
		workloads.Sharded(3, 50),
		workloads.Relay(3, 25),
		workloads.RacyCounter(3, 30, false),
		workloads.RacyCounter(2, 12, true),
	)
	configs := []struct {
		seed    int64
		quantum int
	}{{0, 5}, {3, 40}, {1, 1}, {2, 3}}
	batches := []int{1, 7, 64, 0} // 0 = the whole stream in one Feed
	workers := []int{0, 2, 4, 8}

	for _, wl := range cases {
		for _, cfg := range configs {
			t.Run(fmt.Sprintf("%s/s%d_q%d", wl.Name, cfg.seed, cfg.quantum), func(t *testing.T) {
				cr := captureRun(t, wl.Name+".mpl", wl.Src, cfg.seed, cfg.quantum)
				g := cr.oracleGraph()
				want := race.Report(race.IndexedMasked(g, cr.mask, nil), nil)
				for _, w := range workers {
					got := race.Report(race.ParallelMasked(g, w, cr.mask, nil), nil)
					if got != want {
						t.Fatalf("parallel oracle (workers=%d) diverges:\n got: %swant: %s", w, got, want)
					}
				}
				for _, b := range batches {
					res := onlineResult(cr, b)
					got := race.Report(res.Races, nil)
					if got != want {
						t.Errorf("online (batch=%d) diverges from batch oracle:\n got: %swant: %s", b, got, want)
					}
					if res.Events != int64(len(cr.recs)) {
						t.Errorf("online (batch=%d) built %d events from %d records", b, res.Events, len(cr.recs))
					}
				}
			})
		}
	}
}

// TestFrontierRetirement pins the memory bound: when every process keeps
// synchronizing (Relay — main is in the ring), nearly every edge retires
// while the run is still going and the frontier high-water mark stays far
// below the total. The live state is bounded by the frontier width, not
// the run length.
//
// The contrast case is pinned too: TokenRing's main blocks on P(done)
// from spawn to teardown, and a live process that stops synchronizing
// correctly holds the frontier open — its next edge is concurrent with
// everything produced meanwhile, so retiring would lose races. There the
// guarantee degrades to "everything retires by Finish".
func TestFrontierRetirement(t *testing.T) {
	t.Run("relay", func(t *testing.T) {
		wl := workloads.Relay(4, 150)
		cr := captureRun(t, wl.Name+".mpl", wl.Src, 1, 7)
		res := onlineResult(cr, 64)
		if res.Events < 500 {
			t.Fatalf("workload too small to exercise retirement: %d events", res.Events)
		}
		if res.Retired < res.Events*8/10 {
			t.Errorf("only %d of %d edges retired before Finish; frontier is not retiring", res.Retired, res.Events)
		}
		if res.Highwater*4 > res.Events {
			t.Errorf("frontier high-water %d vs %d events; live state is not sublinear", res.Highwater, res.Events)
		}
	})
	t.Run("tokenring-pinned", func(t *testing.T) {
		wl := workloads.TokenRing(4, 100)
		cr := captureRun(t, wl.Name+".mpl", wl.Src, 1, 7)
		res := onlineResult(cr, 64)
		if res.Retired < res.Events*8/10 {
			t.Errorf("only %d of %d edges retired by Finish", res.Retired, res.Events)
		}
	})
}

// FuzzStreamBatches drives the differential check with adversarial batch
// boundaries: the fuzz input is interpreted as a sequence of batch sizes,
// and every partition of the record stream must produce the oracle's
// exact report. Any divergence is a real soundness bug (a frontier
// retirement that was too eager, a source matched across the wrong
// boundary), never flake.
func FuzzStreamBatches(f *testing.F) {
	wl := workloads.RacyCounter(3, 10, false)
	cr := captureRun(f, wl.Name+".mpl", wl.Src, 2, 3)
	g := cr.oracleGraph()
	want := race.Report(race.IndexedMasked(g, cr.mask, nil), nil)

	f.Add([]byte{1})
	f.Add([]byte{7, 1, 255})
	f.Add([]byte{0, 0, 3})
	f.Add([]byte{64, 2, 2, 2, 90})
	f.Fuzz(func(t *testing.T, sizes []byte) {
		p := stream.New(stream.Config{
			NShared:  len(cr.art.Prog.Globals),
			Mask:     cr.mask,
			VarNames: cr.names,
		})
		recs := cr.recs
		for i := 0; len(recs) > 0; i++ {
			n := 1
			if len(sizes) > 0 {
				n = int(sizes[i%len(sizes)])
			}
			if n <= 0 {
				n = 1 // zero-sized batches would never drain the stream
			}
			n = min(n, len(recs))
			p.Feed(recs[:n])
			recs = recs[n:]
		}
		res := p.Finish()
		got := race.Report(res.Races, nil)
		if got != want {
			t.Errorf("batch partition %v diverges:\n got: %swant: %s", sizes, got, want)
		}
	})
}
