package stream

import (
	"ppd/internal/logging"
	"ppd/internal/parallel"
)

// DefaultBatch is the tee's record batch size when the caller does not
// choose one: small enough that races surface promptly, large enough that
// the VM goroutine rarely touches the channel.
const DefaultBatch = 64

// Tee adapts the logging tap (vm.Options.Tap) into the pipeline's feed: it
// copies each sync-relevant record into a FeedRecord on the VM goroutine
// (the tap contract — the record is recycled the moment the tap returns),
// batches them, and hands batches to a single feeding goroutine over a
// small bounded channel. The bound gives backpressure: a pipeline that
// falls behind slows the VM instead of buffering the run, keeping the
// end-to-end memory bounded by the frontier width plus a few batches.
type Tee struct {
	pipe      *Pipeline
	batchSize int
	batch     []parallel.FeedRecord
	ch        chan []parallel.FeedRecord
	done      chan struct{}
	closed    bool
}

// NewTee starts the feeding goroutine. batchSize <= 0 selects
// DefaultBatch; batchSize 1 feeds every record immediately (lowest
// latency to first race, highest handoff cost).
func NewTee(p *Pipeline, batchSize int) *Tee {
	if batchSize <= 0 {
		batchSize = DefaultBatch
	}
	t := &Tee{
		pipe:      p,
		batchSize: batchSize,
		batch:     make([]parallel.FeedRecord, 0, batchSize),
		ch:        make(chan []parallel.FeedRecord, 4),
		done:      make(chan struct{}),
	}
	go t.run()
	return t
}

func (t *Tee) run() {
	defer close(t.done)
	for b := range t.ch {
		t.pipe.Feed(b)
	}
}

// Tap is the logging.Tap: install it via vm.Options.Tap. It filters the
// sync-relevant kinds (everything else only advances the record index,
// which FeedRecord.RecIdx already carries) and copies the fields the
// builder needs — the record itself is recycled when this returns.
func (t *Tee) Tap(pid, idx int, r *logging.Record) {
	switch r.Kind {
	case logging.RecSync, logging.RecStart, logging.RecExit:
	default:
		return
	}
	t.batch = append(t.batch, parallel.FeedRecord{
		PID:     pid,
		RecIdx:  idx,
		Kind:    r.Kind,
		Op:      r.Op,
		Obj:     r.Obj,
		Stmt:    r.Stmt,
		Gsn:     r.Gsn,
		FromGsn: r.FromGsn,
		Reads:   append([]int(nil), r.Reads...),
		Writes:  append([]int(nil), r.Writes...),
	})
	if len(t.batch) >= t.batchSize {
		t.flush()
	}
}

func (t *Tee) flush() {
	if len(t.batch) == 0 {
		return
	}
	t.ch <- t.batch
	t.batch = make([]parallel.FeedRecord, 0, t.batchSize)
}

// Close flushes the final partial batch and waits for the feeding
// goroutine to drain — after Close returns, the pipeline has consumed
// every tapped record and Finish is safe to call. Idempotent.
func (t *Tee) Close() {
	if t.closed {
		return
	}
	t.closed = true
	t.flush()
	close(t.ch)
	<-t.done
}
