// Package token defines the lexical tokens of MPL, the small C-like parallel
// language compiled by PPD. MPL has integers, booleans, arrays, functions,
// processes (spawn), semaphores (P/V), and message channels (send/recv),
// which together cover every synchronization construct the PLDI '88 paper
// builds synchronization edges for.
package token

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds. Literal and operator groups are delimited so the parser can
// range-check precedence tables.
const (
	ILLEGAL Kind = iota
	EOF
	COMMENT

	literalBeg
	IDENT  // foo
	INT    // 123
	STRING // "abc"
	literalEnd

	operatorBeg
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	LAND // &&
	LOR  // ||
	NOT  // !

	EQL // ==
	NEQ // !=
	LSS // <
	LEQ // <=
	GTR // >
	GEQ // >=

	ASSIGN // =

	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACK    // [
	RBRACK    // ]
	COMMA     // ,
	SEMICOLON // ;
	operatorEnd

	keywordBeg
	FUNC     // func
	VAR      // var
	SHARED   // shared
	SEM      // sem
	CHAN     // chan
	IF       // if
	ELSE     // else
	WHILE    // while
	FOR      // for
	RETURN   // return
	BREAK    // break
	CONTINUE // continue
	SPAWN    // spawn
	ACQUIRE  // P
	RELEASE  // V
	SEND     // send
	RECV     // recv
	PRINT    // print
	TRUE     // true
	FALSE    // false
	INTTYPE  // int
	BOOLTYPE // bool
	keywordEnd
)

var names = map[Kind]string{
	ILLEGAL:   "ILLEGAL",
	EOF:       "EOF",
	COMMENT:   "COMMENT",
	IDENT:     "IDENT",
	INT:       "INT",
	STRING:    "STRING",
	ADD:       "+",
	SUB:       "-",
	MUL:       "*",
	QUO:       "/",
	REM:       "%",
	LAND:      "&&",
	LOR:       "||",
	NOT:       "!",
	EQL:       "==",
	NEQ:       "!=",
	LSS:       "<",
	LEQ:       "<=",
	GTR:       ">",
	GEQ:       ">=",
	ASSIGN:    "=",
	LPAREN:    "(",
	RPAREN:    ")",
	LBRACE:    "{",
	RBRACE:    "}",
	LBRACK:    "[",
	RBRACK:    "]",
	COMMA:     ",",
	SEMICOLON: ";",
	FUNC:      "func",
	VAR:       "var",
	SHARED:    "shared",
	SEM:       "sem",
	CHAN:      "chan",
	IF:        "if",
	ELSE:      "else",
	WHILE:     "while",
	FOR:       "for",
	RETURN:    "return",
	BREAK:     "break",
	CONTINUE:  "continue",
	SPAWN:     "spawn",
	ACQUIRE:   "P",
	RELEASE:   "V",
	SEND:      "send",
	RECV:      "recv",
	PRINT:     "print",
	TRUE:      "true",
	FALSE:     "false",
	INTTYPE:   "int",
	BOOLTYPE:  "bool",
}

// String returns the literal spelling for operators and keywords, or the
// class name for the rest.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsLiteral reports whether the kind is an identifier or literal constant.
func (k Kind) IsLiteral() bool { return literalBeg < k && k < literalEnd }

// IsOperator reports whether the kind is an operator or delimiter.
func (k Kind) IsOperator() bool { return operatorBeg < k && k < operatorEnd }

// IsKeyword reports whether the kind is a reserved word.
func (k Kind) IsKeyword() bool { return keywordBeg < k && k < keywordEnd }

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[names[k]] = k
	}
	return m
}()

// Lookup maps an identifier spelling to its keyword kind, or IDENT.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Precedence levels for binary operators; higher binds tighter. Non-binary
// tokens get LowestPrec.
const (
	LowestPrec  = 0
	highestPrec = 6
)

// Precedence returns the binary-operator precedence of k.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case EQL, NEQ, LSS, LEQ, GTR, GEQ:
		return 3
	case ADD, SUB:
		return 4
	case MUL, QUO, REM:
		return 5
	}
	return LowestPrec
}

// HighestPrec is the precedence of unary operators.
const HighestPrec = highestPrec
