package token

import "testing"

func TestLookupKeywords(t *testing.T) {
	cases := map[string]Kind{
		"func": FUNC, "var": VAR, "shared": SHARED, "sem": SEM, "chan": CHAN,
		"if": IF, "else": ELSE, "while": WHILE, "for": FOR,
		"return": RETURN, "break": BREAK, "continue": CONTINUE,
		"spawn": SPAWN, "P": ACQUIRE, "V": RELEASE,
		"send": SEND, "recv": RECV, "print": PRINT,
		"true": TRUE, "false": FALSE, "int": INTTYPE, "bool": BOOLTYPE,
		"foo": IDENT, "Print": IDENT, "p": IDENT, "v": IDENT,
	}
	for lit, want := range cases {
		if got := Lookup(lit); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", lit, got, want)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !IDENT.IsLiteral() || !INT.IsLiteral() || !STRING.IsLiteral() {
		t.Error("literal predicates wrong")
	}
	if !ADD.IsOperator() || !SEMICOLON.IsOperator() || !LBRACE.IsOperator() {
		t.Error("operator predicates wrong")
	}
	if !FUNC.IsKeyword() || !RECV.IsKeyword() {
		t.Error("keyword predicates wrong")
	}
	if FUNC.IsOperator() || ADD.IsKeyword() || SEM.IsLiteral() {
		t.Error("cross-class predicates wrong")
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// || < && < comparisons < additive < multiplicative.
	chains := [][]Kind{
		{LOR, LAND, EQL, ADD, MUL},
		{LOR, LAND, LSS, SUB, QUO},
		{LOR, LAND, GEQ, ADD, REM},
	}
	for _, chain := range chains {
		for i := 1; i < len(chain); i++ {
			if chain[i-1].Precedence() >= chain[i].Precedence() {
				t.Errorf("%v (%d) should bind looser than %v (%d)",
					chain[i-1], chain[i-1].Precedence(), chain[i], chain[i].Precedence())
			}
		}
	}
	// Same-level groups.
	if ADD.Precedence() != SUB.Precedence() || MUL.Precedence() != REM.Precedence() {
		t.Error("same-level precedence mismatch")
	}
	// Non-binary tokens have the lowest precedence.
	for _, k := range []Kind{ASSIGN, NOT, LPAREN, IDENT, FUNC} {
		if k.Precedence() != LowestPrec {
			t.Errorf("%v precedence = %d, want %d", k, k.Precedence(), LowestPrec)
		}
	}
}

func TestStringSpellings(t *testing.T) {
	cases := map[Kind]string{
		ADD: "+", NEQ: "!=", LAND: "&&", SEMICOLON: ";",
		FUNC: "func", ACQUIRE: "P", RELEASE: "V",
		IDENT: "IDENT", EOF: "EOF",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(9999).String(); got != "Kind(9999)" {
		t.Errorf("unknown kind = %q", got)
	}
}
