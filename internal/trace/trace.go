// Package trace defines the fine-grained event stream the emulation package
// produces during the debugging phase (§3.2.1: "traces of every useful
// event"), and which live full-tracing mode produces during execution when
// PPD's incremental approach is disabled (the expensive baseline the paper
// argues against; experiments E1/E2 measure the difference).
//
// A trace is per-process and statement-structured: each executed statement
// instance opens with EvStmt, followed by the reads, writes, predicate
// outcomes, and call boundaries it produced. The dynamic-graph builder in
// package dynpdg consumes exactly this stream.
package trace

import (
	"fmt"
	"strings"

	"ppd/internal/ast"
	"ppd/internal/logging"
)

// EventKind discriminates trace events.
type EventKind uint8

// Trace event kinds.
const (
	EvStmt        EventKind = iota // begin statement instance (Stmt)
	EvRead                         // Var read with Value (space index of the executing function)
	EvWrite                        // Var written with Value
	EvPred                         // predicate outcome in Value (1/0)
	EvCallBegin                    // entering callee FuncIdx; Args hold the evaluated arguments
	EvCallEnd                      // leaving callee; Value = return value if HasValue
	EvCallSkipped                  // callee not re-executed: postlog substituted (§5.2); Value = return value if HasValue
	EvSync                         // synchronization operation (Op, Obj, Value)
	EvEnd                          // end of the traced interval
)

func (k EventKind) String() string {
	switch k {
	case EvStmt:
		return "stmt"
	case EvRead:
		return "read"
	case EvWrite:
		return "write"
	case EvPred:
		return "pred"
	case EvCallBegin:
		return "call"
	case EvCallEnd:
		return "ret"
	case EvCallSkipped:
		return "call-skipped"
	case EvSync:
		return "sync"
	case EvEnd:
		return "end"
	}
	return "?"
}

// Event is one trace entry.
type Event struct {
	Kind EventKind
	Stmt ast.StmtID // the statement this event belongs to

	Var      int   // EvRead/EvWrite: function-space variable index
	Idx      int   // EvRead/EvWrite on arrays: element index, else -1
	Value    int64 // read/written value, predicate outcome, return value
	HasValue bool  // EvCallEnd/EvCallSkipped: a value was returned

	FuncIdx int     // EvCallBegin/EvCallSkipped: callee function index
	Args    []int64 // EvCallBegin/EvCallSkipped: evaluated arguments

	Op  logging.SyncOp // EvSync
	Obj int            // EvSync: GlobalID of sem/chan
}

// Buffer accumulates events for one process (or one emulated interval).
type Buffer struct {
	PID    int
	Events []Event
}

// Append adds an event.
func (b *Buffer) Append(e Event) { b.Events = append(b.Events, e) }

// Reset empties the buffer for reuse (keeping its capacity) and re-tags
// the PID — the pooled replay context recycles one buffer per emulation.
func (b *Buffer) Reset(pid int) {
	b.PID = pid
	b.Events = b.Events[:0]
}

// Len returns the number of events.
func (b *Buffer) Len() int { return len(b.Events) }

// SizeBytes estimates the encoded size of the trace (E2 metric), using the
// same accounting style as logging.SizeBytes.
func (b *Buffer) SizeBytes() int {
	n := 0
	for i := range b.Events {
		e := &b.Events[i]
		n += 1 + 4 + 4 + 4 + 8 // kind, stmt, var, idx, value
		n += 8 * len(e.Args)
	}
	return n
}

// String renders the trace for tests.
func (b *Buffer) String() string {
	var sb strings.Builder
	for i := range b.Events {
		e := &b.Events[i]
		fmt.Fprintf(&sb, "%s s%d", e.Kind, e.Stmt)
		switch e.Kind {
		case EvRead, EvWrite:
			fmt.Fprintf(&sb, " var%d", e.Var)
			if e.Idx >= 0 {
				fmt.Fprintf(&sb, "[%d]", e.Idx)
			}
			fmt.Fprintf(&sb, "=%d", e.Value)
		case EvPred:
			fmt.Fprintf(&sb, " =%d", e.Value)
		case EvCallBegin, EvCallSkipped:
			fmt.Fprintf(&sb, " f%d args=%v", e.FuncIdx, e.Args)
		case EvCallEnd:
			if e.HasValue {
				fmt.Fprintf(&sb, " =%d", e.Value)
			}
		case EvSync:
			fmt.Fprintf(&sb, " %s obj=%d", e.Op, e.Obj)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Program is a set of per-process traces (full-tracing mode).
type Program struct {
	Buffers []*Buffer
}

// BufferFor returns (creating if needed) the buffer for a PID.
func (p *Program) BufferFor(pid int) *Buffer {
	for len(p.Buffers) <= pid {
		p.Buffers = append(p.Buffers, &Buffer{PID: len(p.Buffers)})
	}
	return p.Buffers[pid]
}

// SizeBytes sums the per-process trace sizes.
func (p *Program) SizeBytes() int {
	n := 0
	for _, b := range p.Buffers {
		n += b.SizeBytes()
	}
	return n
}
