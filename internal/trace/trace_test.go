package trace

import (
	"strings"
	"testing"

	"ppd/internal/logging"
)

func sampleBuffer() *Buffer {
	b := &Buffer{PID: 0}
	b.Append(Event{Kind: EvStmt, Stmt: 1})
	b.Append(Event{Kind: EvWrite, Stmt: 1, Var: 0, Idx: -1, Value: 5})
	b.Append(Event{Kind: EvStmt, Stmt: 2})
	b.Append(Event{Kind: EvRead, Stmt: 2, Var: 0, Idx: -1, Value: 5})
	b.Append(Event{Kind: EvRead, Stmt: 2, Var: 3, Idx: 2, Value: 7})
	b.Append(Event{Kind: EvPred, Stmt: 3, Value: 1})
	b.Append(Event{Kind: EvCallBegin, Stmt: 4, FuncIdx: 1, Args: []int64{5, 6}})
	b.Append(Event{Kind: EvCallEnd, Stmt: 4, Value: 11, HasValue: true})
	b.Append(Event{Kind: EvCallSkipped, Stmt: 5, FuncIdx: 2, Args: []int64{1}, Value: 3, HasValue: true})
	b.Append(Event{Kind: EvSync, Stmt: 6, Op: logging.OpSend, Obj: 4})
	b.Append(Event{Kind: EvEnd})
	return b
}

func TestBufferString(t *testing.T) {
	s := sampleBuffer().String()
	for _, want := range []string{
		"stmt s1",
		"write s1 var0=5",
		"read s2 var3[2]=7",
		"pred s3 =1",
		"call s4 f1 args=[5 6]",
		"ret s4 =11",
		"call-skipped s5 f2 args=[1]",
		"sync s6 send obj=4",
		"end",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("trace string missing %q:\n%s", want, s)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		EvStmt: "stmt", EvRead: "read", EvWrite: "write", EvPred: "pred",
		EvCallBegin: "call", EvCallEnd: "ret", EvCallSkipped: "call-skipped",
		EvSync: "sync", EvEnd: "end",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", k, k.String(), want)
		}
	}
	if EventKind(99).String() != "?" {
		t.Error("unknown kind should render ?")
	}
}

func TestSizeBytesGrowsWithEvents(t *testing.T) {
	b := sampleBuffer()
	n := b.SizeBytes()
	if n <= 0 {
		t.Fatal("size must be positive")
	}
	b.Append(Event{Kind: EvRead})
	if b.SizeBytes() <= n {
		t.Error("size must grow")
	}
	// Args contribute.
	small := &Buffer{}
	small.Append(Event{Kind: EvCallBegin})
	large := &Buffer{}
	large.Append(Event{Kind: EvCallBegin, Args: []int64{1, 2, 3, 4}})
	if large.SizeBytes() <= small.SizeBytes() {
		t.Error("args must contribute to size")
	}
}

func TestProgramBufferFor(t *testing.T) {
	p := &Program{}
	b2 := p.BufferFor(2)
	if b2.PID != 2 || len(p.Buffers) != 3 {
		t.Errorf("BufferFor(2): pid=%d n=%d", b2.PID, len(p.Buffers))
	}
	p.BufferFor(0).Append(Event{Kind: EvEnd})
	b2.Append(Event{Kind: EvStmt})
	b2.Append(Event{Kind: EvEnd})
	if p.SizeBytes() != p.Buffers[0].SizeBytes()+p.Buffers[2].SizeBytes() {
		t.Error("program size must sum buffer sizes")
	}
	if p.Buffers[0].Len() != 1 || b2.Len() != 2 {
		t.Error("lengths wrong")
	}
}
