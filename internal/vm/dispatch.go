package vm

import (
	"sync"

	"ppd/internal/ast"
	"ppd/internal/bytecode"
	"ppd/internal/logging"
)

// Table-driven dispatch — Go's closest analogue to direct threading.
//
// ModeRun and ModeLog slices execute through per-opcode func-value tables
// built once (per process lifetime, under a sync.Once) instead of a switch:
// the dispatcher fetches the opcode and calls straight through a function
// pointer, and at every pc it first consults the function's superinstruction
// side table (bytecode.Fuse) to execute a whole fused sequence in one call.
// The generic stepT remains the cold-path oracle for calls, returns, spawns,
// blocking synchronization, and printing, exactly as in the previous
// switch-based loops.
//
// The contract is unchanged from those loops and is pinned by the golden
// matrix (TestLogGoldenByteIdentical, TestLogGoldenFusedVsUnfused): same
// step counts, same failure sites, byte-identical ModeLog output. Two rules
// keep fused execution inside that contract:
//
//   - a superinstruction of width W executes only when the current slice
//     has ≥ W quantum left AND the instruction budget admits W more steps;
//     otherwise the same instructions run through single-op dispatch, so
//     slice boundaries and budget-exhaustion points land on exactly the
//     same instruction as with fusion off;
//   - only infallible sequences are fused (bytecode.Fuse), so every
//     failure site still reports its single-op PC.
//
// Handlers communicate non-linear control flow through dispatch.sig:
// sigReload after a cold op that may have changed the top frame, sigExit on
// failure/block/finish (the handler has already written back PC/stack).

type opFn func(d *dispatch, in *bytecode.Instr)

type superFn func(d *dispatch, s *bytecode.SuperInstr)

// opTable is indexed by the full uint8 opcode space: a corrupt cache entry
// can carry any byte, and every unspecialized opcode routes to dCold whose
// stepT oracle reports "illegal opcode" exactly like the old switch.
type opTable [256]opFn

type superTable [bytecode.NumSuperOps]superFn

// dispatch carries the interpreter's cached hot state across handler
// calls. One instance lives in the VM (no per-slice allocation); the
// fields mirror the locals of the former runSliceRun/runSliceLog loops.
type dispatch struct {
	v     *VM
	p     *Proc
	f     *Frame
	code  []bytecode.Instr
	super []bytecode.SuperInstr
	slots []Value
	stack []int64
	pc    int
	sig   uint8
}

const (
	sigNone   uint8 = iota
	sigReload       // cold op ran through stepT: re-cache the top frame
	sigExit         // failure/block/finish: PC and stack already written back
)

var (
	tablesOnce sync.Once
	runOps     opTable
	logOps     opTable
	runSups    superTable
	logSups    superTable
)

// reload re-caches the (possibly new) top frame after a cold op.
func (d *dispatch) reload() {
	f := d.p.top()
	d.f = f
	d.code = f.Fn.Code
	d.super = f.Fn.Super
	d.slots = f.Slots
	d.stack = f.Stack
	d.pc = f.PC
}

// runSliceTab is the table-driven slice driver for ModeRun and ModeLog.
func (v *VM) runSliceTab(p *Proc) {
	d := &v.disp
	d.v, d.p, d.sig = v, p, sigNone
	d.reload()
	ops, sups := v.ops, v.sups
	quantum, maxSteps := v.Opts.Quantum, v.Opts.MaxSteps

	for q := 0; q < quantum; {
		if d.super != nil && d.pc < len(d.super) {
			if s := &d.super[d.pc]; s.Op != bytecode.SuperNone {
				if w := int(s.W); q+w <= quantum && v.Steps+int64(w) <= maxSteps {
					v.Steps += int64(w)
					q += w
					d.pc += w
					sups[s.Op](d, s)
					if d.sig == sigExit {
						// A certificate-gated shape hit its (provably
						// impossible) failure path and already wrote back
						// the single-op machine state.
						return
					}
					continue
				}
			}
		}
		v.Steps++
		q++
		if v.Steps > maxSteps {
			d.f.PC, d.f.Stack = d.pc, d.stack
			v.fail(p, ast.NoStmt, "instruction budget exhausted")
			return
		}
		if d.pc >= len(d.code) {
			d.f.PC, d.f.Stack = d.pc, d.stack
			v.fail(p, ast.NoStmt, "pc out of range in %s", d.f.Fn.Name)
			return
		}
		in := &d.code[d.pc]
		d.pc++
		ops[in.Op](d, in)
		if d.sig != sigNone {
			if d.sig == sigExit {
				return
			}
			d.sig = sigNone
			d.reload()
		}
	}
	d.f.PC, d.f.Stack = d.pc, d.stack
}

// runSliceTabProf is runSliceTab plus the per-opcode/per-pair profile for
// Options.OpProfile. It is a separate copy so the unprofiled driver pays
// nothing; fused dispatches count their constituent opcodes and pairs, so
// the histogram does not depend on the fusion configuration.
func (v *VM) runSliceTabProf(p *Proc) {
	d := &v.disp
	d.v, d.p, d.sig = v, p, sigNone
	d.reload()
	ops, sups := v.ops, v.sups
	prof := v.prof
	quantum, maxSteps := v.Opts.Quantum, v.Opts.MaxSteps
	prev := -1

	for q := 0; q < quantum; {
		if d.super != nil && d.pc < len(d.super) {
			if s := &d.super[d.pc]; s.Op != bytecode.SuperNone {
				if w := int(s.W); q+w <= quantum && v.Steps+int64(w) <= maxSteps {
					for i := d.pc; i < d.pc+w; i++ {
						op := int(d.code[i].Op)
						prof.Count(prev, op)
						prev = op
					}
					prof.CountSuper(int(s.Op))
					v.Steps += int64(w)
					q += w
					d.pc += w
					sups[s.Op](d, s)
					if d.sig == sigExit {
						return
					}
					continue
				}
			}
		}
		v.Steps++
		q++
		if v.Steps > maxSteps {
			d.f.PC, d.f.Stack = d.pc, d.stack
			v.fail(p, ast.NoStmt, "instruction budget exhausted")
			return
		}
		if d.pc >= len(d.code) {
			d.f.PC, d.f.Stack = d.pc, d.stack
			v.fail(p, ast.NoStmt, "pc out of range in %s", d.f.Fn.Name)
			return
		}
		in := &d.code[d.pc]
		d.pc++
		prof.Count(prev, int(in.Op))
		prev = int(in.Op)
		ops[in.Op](d, in)
		if d.sig != sigNone {
			if d.sig == sigExit {
				return
			}
			d.sig = sigNone
			d.reload()
		}
	}
	d.f.PC, d.f.Stack = d.pc, d.stack
}

// buildDispatchTables fills the run/log op and superinstruction tables.
// The two op tables differ only where ModeLog marks shared-variable
// accesses or emits log records; everything else is shared handler code.
func buildDispatchTables() {
	var base opTable
	for i := range base {
		base[i] = dCold
	}
	base[bytecode.OpNop] = dNop
	base[bytecode.OpConst] = dConst
	base[bytecode.OpPop] = dPop
	base[bytecode.OpLoadLocal] = dLoadLocal
	base[bytecode.OpStoreLocal] = dStoreLocal
	base[bytecode.OpLoadIndexedL] = dLoadIndexedL
	base[bytecode.OpAdd] = dAdd
	base[bytecode.OpSub] = dSub
	base[bytecode.OpMul] = dMul
	base[bytecode.OpDiv] = dDiv
	base[bytecode.OpMod] = dMod
	base[bytecode.OpEq] = dEq
	base[bytecode.OpNe] = dNe
	base[bytecode.OpLt] = dLt
	base[bytecode.OpLe] = dLe
	base[bytecode.OpGt] = dGt
	base[bytecode.OpGe] = dGe
	base[bytecode.OpNeg] = dNeg
	base[bytecode.OpNot] = dNot
	base[bytecode.OpJmp] = dJmp
	base[bytecode.OpJmpFalse] = dJmpFalse
	base[bytecode.OpJmpTrue] = dJmpTrue
	base[bytecode.OpSemP] = dSemP
	base[bytecode.OpSemV] = dSemV

	runOps = base
	runOps[bytecode.OpLoadGlobal] = dLoadGlobalRun
	runOps[bytecode.OpStoreGlobal] = dStoreGlobalRun
	runOps[bytecode.OpStoreIndexedL] = dStoreIndexedLRun
	runOps[bytecode.OpLoadIndexedG] = dLoadIndexedGRun
	runOps[bytecode.OpStoreIndexedG] = dStoreIndexedGRun
	runOps[bytecode.OpPrelog] = dNop
	runOps[bytecode.OpPostlog] = dNop
	runOps[bytecode.OpShPrelog] = dNop

	logOps = base
	logOps[bytecode.OpLoadGlobal] = dLoadGlobalLog
	logOps[bytecode.OpStoreGlobal] = dStoreGlobalLog
	logOps[bytecode.OpStoreIndexedL] = dStoreIndexedLLog
	logOps[bytecode.OpLoadIndexedG] = dLoadIndexedGLog
	logOps[bytecode.OpStoreIndexedG] = dStoreIndexedGLog
	logOps[bytecode.OpPrelog] = dPrelog
	logOps[bytecode.OpPostlog] = dPostlog
	logOps[bytecode.OpShPrelog] = dShPrelog

	var sbase superTable
	sbase[bytecode.SuperNone] = sNone
	sbase[bytecode.SuperLLBinS] = sLLBinS
	sbase[bytecode.SuperLCBinS] = sLCBinS
	sbase[bytecode.SuperLLCmpJf] = sLLCmpJf
	sbase[bytecode.SuperLCCmpJf] = sLCCmpJf
	sbase[bytecode.SuperLLBin] = sLLBin
	sbase[bytecode.SuperLCBin] = sLCBin
	sbase[bytecode.SuperLBin] = sLBin
	sbase[bytecode.SuperCBin] = sCBin
	sbase[bytecode.SuperConstStoreL] = sConstStoreL
	sbase[bytecode.SuperCmpJf] = sCmpJf
	sbase[bytecode.SuperLLDivS] = sLLDivS
	sbase[bytecode.SuperLLDiv] = sLLDiv
	sbase[bytecode.SuperLDiv] = sLDiv
	sbase[bytecode.SuperIdxLoadL] = sIdxLoadL

	runSups = sbase
	runSups[bytecode.SuperLGBin] = sLGBinRun
	runSups[bytecode.SuperLGCmpJf] = sLGCmpJfRun
	runSups[bytecode.SuperLGDiv] = sLGDivRun
	runSups[bytecode.SuperIdxLoadG] = sIdxLoadGRun
	runSups[bytecode.SuperIdxStoreL] = sIdxStoreLRun
	runSups[bytecode.SuperIdxStoreG] = sIdxStoreGRun

	logSups = sbase
	logSups[bytecode.SuperLGBin] = sLGBinLog
	logSups[bytecode.SuperLGCmpJf] = sLGCmpJfLog
	logSups[bytecode.SuperLGDiv] = sLGDivLog
	logSups[bytecode.SuperIdxLoadG] = sIdxLoadGLog
	logSups[bytecode.SuperIdxStoreL] = sIdxStoreLLog
	logSups[bytecode.SuperIdxStoreG] = sIdxStoreGLog

	buildEmuDispatchTables()
}

// dCold hands the instruction to the generic step — the same fallback the
// switch loops used for calls, returns, spawns, sync, printing, and
// unknown opcodes.
func dCold(d *dispatch, _ *bytecode.Instr) {
	d.pc--
	d.f.PC, d.f.Stack = d.pc, d.stack
	v := d.v
	v.stepT(d.p, false)
	if v.Failure != nil || d.p.Status != StatusReady {
		d.sig = sigExit
		return
	}
	d.sig = sigReload
}

func dNop(_ *dispatch, _ *bytecode.Instr) {}

func dConst(d *dispatch, in *bytecode.Instr) {
	d.stack = append(d.stack, int64(in.A))
}

func dPop(d *dispatch, _ *bytecode.Instr) {
	d.stack = d.stack[:len(d.stack)-1]
}

func dLoadLocal(d *dispatch, in *bytecode.Instr) {
	d.stack = append(d.stack, d.slots[in.A].Int)
}

func dStoreLocal(d *dispatch, in *bytecode.Instr) {
	n := len(d.stack) - 1
	d.slots[in.A] = Value{Int: d.stack[n]}
	d.stack = d.stack[:n]
}

func dLoadGlobalRun(d *dispatch, in *bytecode.Instr) {
	d.stack = append(d.stack, d.v.Globals[in.A].Int)
}

func dLoadGlobalLog(d *dispatch, in *bytecode.Instr) {
	d.stack = append(d.stack, d.v.Globals[in.A].Int)
	if d.v.shared[in.A] {
		d.p.reads.Add(in.A)
	}
}

func dStoreGlobalRun(d *dispatch, in *bytecode.Instr) {
	n := len(d.stack) - 1
	d.v.Globals[in.A] = Value{Int: d.stack[n]}
	d.stack = d.stack[:n]
}

func dStoreGlobalLog(d *dispatch, in *bytecode.Instr) {
	n := len(d.stack) - 1
	d.v.Globals[in.A] = Value{Int: d.stack[n]}
	d.stack = d.stack[:n]
	if d.v.shared[in.A] {
		d.p.writes.Add(in.A)
	}
}

// indexFail writes back the interpreter state and reports an out-of-range
// index (operands already popped, matching the switch loops' fail sites).
func (d *dispatch) indexFail(in *bytecode.Instr, i int64, n int) {
	d.f.PC, d.f.Stack = d.pc, d.stack
	d.v.fail(d.p, in.Stmt, "array index %d out of range [0,%d)", i, n)
	d.sig = sigExit
}

func dLoadIndexedL(d *dispatch, in *bytecode.Instr) {
	n := len(d.stack) - 1
	i := d.stack[n]
	d.stack = d.stack[:n]
	arr := d.slots[in.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.indexFail(in, i, len(arr))
		return
	}
	d.stack = append(d.stack, arr[i])
}

func dStoreIndexedLRun(d *dispatch, in *bytecode.Instr) {
	n := len(d.stack)
	val, i := d.stack[n-1], d.stack[n-2]
	d.stack = d.stack[:n-2]
	arr := d.slots[in.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.indexFail(in, i, len(arr))
		return
	}
	arr[i] = val
}

func dStoreIndexedLLog(d *dispatch, in *bytecode.Instr) {
	n := len(d.stack)
	val, i := d.stack[n-1], d.stack[n-2]
	d.stack = d.stack[:n-2]
	arr := d.slots[in.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.indexFail(in, i, len(arr))
		return
	}
	arr[i] = val
	if d.f.arrSnap != nil {
		d.f.arrSnap[in.A].dirty = true
	}
}

func dLoadIndexedGRun(d *dispatch, in *bytecode.Instr) {
	n := len(d.stack) - 1
	i := d.stack[n]
	d.stack = d.stack[:n]
	arr := d.v.Globals[in.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.indexFail(in, i, len(arr))
		return
	}
	d.stack = append(d.stack, arr[i])
}

func dLoadIndexedGLog(d *dispatch, in *bytecode.Instr) {
	n := len(d.stack) - 1
	i := d.stack[n]
	d.stack = d.stack[:n]
	arr := d.v.Globals[in.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.indexFail(in, i, len(arr))
		return
	}
	d.stack = append(d.stack, arr[i])
	if d.v.shared[in.A] {
		d.p.reads.Add(in.A)
	}
}

func dStoreIndexedGRun(d *dispatch, in *bytecode.Instr) {
	n := len(d.stack)
	val, i := d.stack[n-1], d.stack[n-2]
	d.stack = d.stack[:n-2]
	arr := d.v.Globals[in.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.indexFail(in, i, len(arr))
		return
	}
	arr[i] = val
}

func dStoreIndexedGLog(d *dispatch, in *bytecode.Instr) {
	n := len(d.stack)
	val, i := d.stack[n-1], d.stack[n-2]
	d.stack = d.stack[:n-2]
	arr := d.v.Globals[in.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.indexFail(in, i, len(arr))
		return
	}
	arr[i] = val
	if d.v.shared[in.A] {
		d.p.writes.Add(in.A)
	}
	d.v.gDirty[in.A] = true
}

func dAdd(d *dispatch, _ *bytecode.Instr) {
	n := len(d.stack)
	d.stack[n-2] += d.stack[n-1]
	d.stack = d.stack[:n-1]
}

func dSub(d *dispatch, _ *bytecode.Instr) {
	n := len(d.stack)
	d.stack[n-2] -= d.stack[n-1]
	d.stack = d.stack[:n-1]
}

func dMul(d *dispatch, _ *bytecode.Instr) {
	n := len(d.stack)
	d.stack[n-2] *= d.stack[n-1]
	d.stack = d.stack[:n-1]
}

func dDiv(d *dispatch, in *bytecode.Instr) {
	n := len(d.stack)
	if d.stack[n-1] == 0 {
		d.stack = d.stack[:n-2]
		d.f.PC, d.f.Stack = d.pc, d.stack
		d.v.fail(d.p, in.Stmt, "division by zero")
		d.sig = sigExit
		return
	}
	d.stack[n-2] /= d.stack[n-1]
	d.stack = d.stack[:n-1]
}

func dMod(d *dispatch, in *bytecode.Instr) {
	n := len(d.stack)
	if d.stack[n-1] == 0 {
		d.stack = d.stack[:n-2]
		d.f.PC, d.f.Stack = d.pc, d.stack
		d.v.fail(d.p, in.Stmt, "modulo by zero")
		d.sig = sigExit
		return
	}
	d.stack[n-2] %= d.stack[n-1]
	d.stack = d.stack[:n-1]
}

func dEq(d *dispatch, _ *bytecode.Instr) {
	n := len(d.stack)
	d.stack[n-2] = b2i(d.stack[n-2] == d.stack[n-1])
	d.stack = d.stack[:n-1]
}

func dNe(d *dispatch, _ *bytecode.Instr) {
	n := len(d.stack)
	d.stack[n-2] = b2i(d.stack[n-2] != d.stack[n-1])
	d.stack = d.stack[:n-1]
}

func dLt(d *dispatch, _ *bytecode.Instr) {
	n := len(d.stack)
	d.stack[n-2] = b2i(d.stack[n-2] < d.stack[n-1])
	d.stack = d.stack[:n-1]
}

func dLe(d *dispatch, _ *bytecode.Instr) {
	n := len(d.stack)
	d.stack[n-2] = b2i(d.stack[n-2] <= d.stack[n-1])
	d.stack = d.stack[:n-1]
}

func dGt(d *dispatch, _ *bytecode.Instr) {
	n := len(d.stack)
	d.stack[n-2] = b2i(d.stack[n-2] > d.stack[n-1])
	d.stack = d.stack[:n-1]
}

func dGe(d *dispatch, _ *bytecode.Instr) {
	n := len(d.stack)
	d.stack[n-2] = b2i(d.stack[n-2] >= d.stack[n-1])
	d.stack = d.stack[:n-1]
}

func dNeg(d *dispatch, _ *bytecode.Instr) {
	d.stack[len(d.stack)-1] = -d.stack[len(d.stack)-1]
}

func dNot(d *dispatch, _ *bytecode.Instr) {
	d.stack[len(d.stack)-1] = b2i(d.stack[len(d.stack)-1] == 0)
}

func dJmp(d *dispatch, in *bytecode.Instr) {
	d.pc = in.A
}

func dJmpFalse(d *dispatch, in *bytecode.Instr) {
	n := len(d.stack) - 1
	c := d.stack[n]
	d.stack = d.stack[:n]
	if c == 0 {
		d.pc = in.A
	}
}

func dJmpTrue(d *dispatch, in *bytecode.Instr) {
	n := len(d.stack) - 1
	c := d.stack[n]
	d.stack = d.stack[:n]
	if c != 0 {
		d.pc = in.A
	}
}

func dPrelog(d *dispatch, in *bytecode.Instr) {
	d.v.emitPrelog(d.p, in.A, in.Stmt)
}

func dPostlog(d *dispatch, in *bytecode.Instr) {
	// the emitter reads the return value off the operand stack
	d.f.Stack = d.stack
	d.v.emitPostlog(d.p, in.A, in.B == 1, in.Stmt)
}

func dShPrelog(d *dispatch, in *bytecode.Instr) {
	d.v.emitShPrelog(d.p, d.f.Fn, in.A)
}

// dSemP is the non-blocking P fast path: when the semaphore's count is
// positive, the operation completes inline — same gsn allocation, same
// §6.2.1 pendingV pairing, and (under ModeLog) the same sync record as
// execSemP's fast case. A zero count or a bad object falls back to the
// oracle, which blocks or fails identically to before.
func dSemP(d *dispatch, in *bytecode.Instr) {
	v := d.v
	s := v.sems[in.A]
	if s == nil || s.count <= 0 {
		dCold(d, in)
		return
	}
	s.count--
	gsn := v.nextGsn()
	var from uint64
	if s.pendingVGsn != 0 && s.pendingVPid != d.p.PID {
		from = s.pendingVGsn
	}
	s.pendingVGsn, s.pendingVPid = 0, -1
	v.logSyncEvent(d.p, logging.OpP, in.A, in.Stmt, gsn, from, s.count)
}

// dSemV is the no-waiter V fast path; a V with waiters (direct handoff to
// a blocked P, which mutates the ready queue) takes the cold path.
func dSemV(d *dispatch, in *bytecode.Instr) {
	v := d.v
	s := v.sems[in.A]
	if s == nil || len(s.waiters) > 0 {
		dCold(d, in)
		return
	}
	gsn := v.nextGsn()
	v.logSyncEvent(d.p, logging.OpV, in.A, in.Stmt, gsn, 0, s.count)
	s.count++
	if s.count == 1 {
		s.pendingVGsn, s.pendingVPid = gsn, d.p.PID
	} else {
		s.pendingVGsn, s.pendingVPid = 0, -1
	}
}
