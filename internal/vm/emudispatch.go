package vm

import (
	"fmt"

	"ppd/internal/ast"
	"ppd/internal/bytecode"
	"ppd/internal/trace"
)

// Table-driven dispatch for ModeEmulate — the debugging phase's hot path.
//
// PR 6 gave ModeRun and ModeLog per-opcode function tables; emulation kept
// the generic stepT loop because its handlers must interleave trace events
// (EvStmt boundaries, per-access EvRead/EvWrite, EvPred) with execution.
// This file closes that gap: emuOps mirrors stepT's ModeEmulate semantics
// exactly — boundary before the op, events in single-op order, identical
// failure sites and messages — and emuSups executes the infallible fused
// windows under emulation by emitting each constituent's boundary and
// events in the order single-op dispatch would have.
//
// The contract is the same cold-path-oracle pattern as PR 6, pinned by
// TestEmuDispatchByteIdentical and FuzzEmuEquivalence (internal/emulation):
// for every interval, the fast path's trace bytes, final globals, failure,
// and records consumed equal the generic loop's (Options.EmuGeneric).
//
//   - Hook-delegated instructions (calls, returns, spawn, sync, prelog /
//     postlog / shared-prelog markers) and printing go through dEmuCold →
//     stepT, the unchanged oracle.
//   - Fused windows execute only for shapes whose trace-event order is
//     provably identical to single-op execution: the twelve infallible
//     shapes. Certificate-gated shapes (div/mod with variable divisors,
//     indexed windows) carry failure paths whose single-op state is
//     entangled with the trace; they fall back to single-op dispatch,
//     where the emu handlers reproduce the exact failure anyway.
//   - Emulation has no scheduling quantum (one process runs to its
//     postlog), so a window is gated only on the instruction budget:
//     budget-exhaustion points land on the same instruction either way.

var (
	emuOps  opTable
	emuSups superTable
)

// buildEmuDispatchTables fills the ModeEmulate tables; called from
// buildDispatchTables under the same sync.Once.
func buildEmuDispatchTables() {
	for i := range emuOps {
		emuOps[i] = dEmuCold
	}
	emuOps[bytecode.OpNop] = dNop // marker: no boundary, no effect
	emuOps[bytecode.OpConst] = eConst
	emuOps[bytecode.OpPop] = ePop
	emuOps[bytecode.OpLoadLocal] = eLoadLocal
	emuOps[bytecode.OpStoreLocal] = eStoreLocal
	emuOps[bytecode.OpLoadGlobal] = eLoadGlobal
	emuOps[bytecode.OpStoreGlobal] = eStoreGlobal
	emuOps[bytecode.OpLoadIndexedL] = eLoadIndexedL
	emuOps[bytecode.OpStoreIndexedL] = eStoreIndexedL
	emuOps[bytecode.OpLoadIndexedG] = eLoadIndexedG
	emuOps[bytecode.OpStoreIndexedG] = eStoreIndexedG
	emuOps[bytecode.OpAdd] = eAdd
	emuOps[bytecode.OpSub] = eSub
	emuOps[bytecode.OpMul] = eMul
	emuOps[bytecode.OpDiv] = eDiv
	emuOps[bytecode.OpMod] = eMod
	emuOps[bytecode.OpEq] = eEq
	emuOps[bytecode.OpNe] = eNe
	emuOps[bytecode.OpLt] = eLt
	emuOps[bytecode.OpLe] = eLe
	emuOps[bytecode.OpGt] = eGt
	emuOps[bytecode.OpGe] = eGe
	emuOps[bytecode.OpNeg] = eNeg
	emuOps[bytecode.OpNot] = eNot
	emuOps[bytecode.OpJmp] = eJmp
	emuOps[bytecode.OpJmpFalse] = eJmpFalse
	emuOps[bytecode.OpJmpTrue] = eJmpTrue
	emuOps[bytecode.OpPrintStr] = ePrintStr
	emuOps[bytecode.OpPrintVal] = ePrintVal
	emuOps[bytecode.OpPrintNl] = ePrintNl

	// Fused windows with provably identical trace-event order. The
	// certificate-gated shapes (SuperLLDivS…SuperIdxStoreG) stay nil: the
	// driver falls back to single-op emu dispatch for them.
	emuSups[bytecode.SuperLLBinS] = esLLBinS
	emuSups[bytecode.SuperLCBinS] = esLCBinS
	emuSups[bytecode.SuperLLCmpJf] = esLLCmpJf
	emuSups[bytecode.SuperLCCmpJf] = esLCCmpJf
	emuSups[bytecode.SuperLGCmpJf] = esLGCmpJf
	emuSups[bytecode.SuperLLBin] = esLLBin
	emuSups[bytecode.SuperLCBin] = esLCBin
	emuSups[bytecode.SuperLGBin] = esLGBin
	emuSups[bytecode.SuperLBin] = esLBin
	emuSups[bytecode.SuperCBin] = esCBin
	emuSups[bytecode.SuperConstStoreL] = esConstStoreL
	emuSups[bytecode.SuperCmpJf] = esCmpJf
}

// runEmuTab is the table-driven counterpart of runEmuGeneric (the oracle
// kept in exec.go). Same step accounting, same budget-exhaustion and
// pc-range failure points, byte-identical trace output. The caller
// guarantees tracing (p.Tbuf != nil).
func (v *VM) runEmuTab(p *Proc) error {
	tablesOnce.Do(buildDispatchTables)
	d := &v.disp
	d.v, d.p, d.sig = v, p, sigNone
	d.reload()
	maxSteps := v.Opts.MaxSteps

	for {
		if d.super != nil && d.pc < len(d.super) {
			if s := &d.super[d.pc]; s.Op != bytecode.SuperNone {
				if h := emuSups[s.Op]; h != nil && v.Steps+int64(s.W) <= maxSteps {
					v.Steps += int64(s.W)
					d.pc += int(s.W)
					h(d, s)
					if d.sig == sigExit {
						break
					}
					continue
				}
			}
		}
		v.Steps++
		if v.Steps > maxSteps {
			d.f.PC, d.f.Stack = d.pc, d.stack
			return fmt.Errorf("emulation budget exhausted")
		}
		if d.pc >= len(d.code) {
			d.f.PC, d.f.Stack = d.pc, d.stack
			v.fail(p, ast.NoStmt, "pc out of range in %s", d.f.Fn.Name)
			return v.Failure
		}
		in := &d.code[d.pc]
		d.pc++
		emuOps[in.Op](d, in)
		if d.sig != sigNone {
			if d.sig == sigExit {
				break
			}
			d.sig = sigNone
			d.reload()
		}
	}
	if v.Failure != nil {
		return v.Failure
	}
	return nil
}

// dEmuCold hands the instruction to stepT (tracing on): calls, returns,
// spawn, sync, printing markers, prelog/postlog/shared-prelog, illegal
// opcodes. It also exits on emuStop (the root postlog) — the condition the
// generic loop checks after every step but that only cold ops can set.
func dEmuCold(d *dispatch, _ *bytecode.Instr) {
	d.pc--
	d.f.PC, d.f.Stack = d.pc, d.stack
	v := d.v
	v.emuCold++
	v.stepT(d.p, true)
	if v.Failure != nil || v.emuStop || d.p.Status != StatusReady {
		d.sig = sigExit
		return
	}
	d.sig = sigReload
}

// emuBoundary emits EvStmt when crossing into a new statement — the same
// predicate stepT applies before every non-marker instruction.
func (d *dispatch) emuBoundary(in *bytecode.Instr) {
	if in.Stmt != ast.NoStmt && in.Stmt != d.p.lastStmt {
		d.p.lastStmt = in.Stmt
		d.p.Tbuf.Append(trace.Event{Kind: trace.EvStmt, Stmt: in.Stmt})
	}
}

// emuBoundaryAt emits the boundary for the constituent instruction at pc
// inside a fused window and returns it (for its Stmt tag).
func (d *dispatch) emuBoundaryAt(pc int) *bytecode.Instr {
	in := &d.code[pc]
	d.emuBoundary(in)
	return in
}

// ---- single-op handlers ----

func eConst(d *dispatch, in *bytecode.Instr) {
	d.emuBoundary(in)
	d.stack = append(d.stack, int64(in.A))
}

func ePop(d *dispatch, in *bytecode.Instr) {
	d.emuBoundary(in)
	d.stack = d.stack[:len(d.stack)-1]
}

func eLoadLocal(d *dispatch, in *bytecode.Instr) {
	d.emuBoundary(in)
	val := d.slots[in.A].Int
	d.stack = append(d.stack, val)
	d.p.Tbuf.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: in.A, Idx: -1, Value: val})
}

func eStoreLocal(d *dispatch, in *bytecode.Instr) {
	d.emuBoundary(in)
	n := len(d.stack) - 1
	val := d.stack[n]
	d.stack = d.stack[:n]
	d.slots[in.A] = Value{Int: val}
	d.p.Tbuf.Append(trace.Event{Kind: trace.EvWrite, Stmt: in.Stmt, Var: in.A, Idx: -1, Value: val})
}

func eLoadGlobal(d *dispatch, in *bytecode.Instr) {
	d.emuBoundary(in)
	val := d.v.Globals[in.A].Int
	d.stack = append(d.stack, val)
	d.p.Tbuf.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: d.f.Fn.NumSlots + in.A, Idx: -1, Value: val})
}

func eStoreGlobal(d *dispatch, in *bytecode.Instr) {
	d.emuBoundary(in)
	n := len(d.stack) - 1
	val := d.stack[n]
	d.stack = d.stack[:n]
	d.v.Globals[in.A] = Value{Int: val}
	d.p.Tbuf.Append(trace.Event{Kind: trace.EvWrite, Stmt: in.Stmt, Var: d.f.Fn.NumSlots + in.A, Idx: -1, Value: val})
}

func eLoadIndexedL(d *dispatch, in *bytecode.Instr) {
	d.emuBoundary(in)
	n := len(d.stack) - 1
	i := d.stack[n]
	d.stack = d.stack[:n]
	arr := d.slots[in.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.indexFail(in, i, len(arr))
		return
	}
	d.stack = append(d.stack, arr[i])
	d.p.Tbuf.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: in.A, Idx: int(i), Value: arr[i]})
}

func eStoreIndexedL(d *dispatch, in *bytecode.Instr) {
	d.emuBoundary(in)
	n := len(d.stack)
	val, i := d.stack[n-1], d.stack[n-2]
	d.stack = d.stack[:n-2]
	arr := d.slots[in.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.indexFail(in, i, len(arr))
		return
	}
	arr[i] = val
	d.p.Tbuf.Append(trace.Event{Kind: trace.EvWrite, Stmt: in.Stmt, Var: in.A, Idx: int(i), Value: val})
}

func eLoadIndexedG(d *dispatch, in *bytecode.Instr) {
	d.emuBoundary(in)
	n := len(d.stack) - 1
	i := d.stack[n]
	d.stack = d.stack[:n]
	arr := d.v.Globals[in.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.indexFail(in, i, len(arr))
		return
	}
	d.stack = append(d.stack, arr[i])
	d.p.Tbuf.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: d.f.Fn.NumSlots + in.A, Idx: int(i), Value: arr[i]})
}

func eStoreIndexedG(d *dispatch, in *bytecode.Instr) {
	d.emuBoundary(in)
	n := len(d.stack)
	val, i := d.stack[n-1], d.stack[n-2]
	d.stack = d.stack[:n-2]
	arr := d.v.Globals[in.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.indexFail(in, i, len(arr))
		return
	}
	arr[i] = val
	d.p.Tbuf.Append(trace.Event{Kind: trace.EvWrite, Stmt: in.Stmt, Var: d.f.Fn.NumSlots + in.A, Idx: int(i), Value: val})
}

func eAdd(d *dispatch, in *bytecode.Instr) { d.emuBoundary(in); dAdd(d, in) }
func eSub(d *dispatch, in *bytecode.Instr) { d.emuBoundary(in); dSub(d, in) }
func eMul(d *dispatch, in *bytecode.Instr) { d.emuBoundary(in); dMul(d, in) }
func eDiv(d *dispatch, in *bytecode.Instr) { d.emuBoundary(in); dDiv(d, in) }
func eMod(d *dispatch, in *bytecode.Instr) { d.emuBoundary(in); dMod(d, in) }
func eEq(d *dispatch, in *bytecode.Instr)  { d.emuBoundary(in); dEq(d, in) }
func eNe(d *dispatch, in *bytecode.Instr)  { d.emuBoundary(in); dNe(d, in) }
func eLt(d *dispatch, in *bytecode.Instr)  { d.emuBoundary(in); dLt(d, in) }
func eLe(d *dispatch, in *bytecode.Instr)  { d.emuBoundary(in); dLe(d, in) }
func eGt(d *dispatch, in *bytecode.Instr)  { d.emuBoundary(in); dGt(d, in) }
func eGe(d *dispatch, in *bytecode.Instr)  { d.emuBoundary(in); dGe(d, in) }
func eNeg(d *dispatch, in *bytecode.Instr) { d.emuBoundary(in); dNeg(d, in) }
func eNot(d *dispatch, in *bytecode.Instr) { d.emuBoundary(in); dNot(d, in) }

func eJmp(d *dispatch, in *bytecode.Instr) {
	d.emuBoundary(in)
	d.pc = in.A
}

func eJmpFalse(d *dispatch, in *bytecode.Instr) {
	d.emuBoundary(in)
	n := len(d.stack) - 1
	c := d.stack[n]
	d.stack = d.stack[:n]
	if in.B == 1 {
		d.p.Tbuf.Append(trace.Event{Kind: trace.EvPred, Stmt: in.Stmt, Value: c})
	}
	if c == 0 {
		d.pc = in.A
	}
}

func eJmpTrue(d *dispatch, in *bytecode.Instr) {
	d.emuBoundary(in)
	n := len(d.stack) - 1
	c := d.stack[n]
	d.stack = d.stack[:n]
	if c != 0 {
		d.pc = in.A
	}
}

// Print output is suppressed under emulation; only the statement boundary
// (and PrintVal's pop) remains.
func ePrintStr(d *dispatch, in *bytecode.Instr) { d.emuBoundary(in) }

func ePrintVal(d *dispatch, in *bytecode.Instr) {
	d.emuBoundary(in)
	d.stack = d.stack[:len(d.stack)-1]
}

func ePrintNl(d *dispatch, in *bytecode.Instr) { d.emuBoundary(in) }

// ---- fused-window handlers ----
//
// Each handler replays its constituents' boundaries and trace events in
// exact single-op order. The driver has already advanced d.pc past the
// window, so pc0 = d.pc - W indexes the first constituent (for …CmpJf
// shapes a taken branch then rewrites d.pc).

func esLLBinS(d *dispatch, s *bytecode.SuperInstr) {
	pc0 := d.pc - int(s.W)
	tb := d.p.Tbuf
	x := d.slots[s.A].Int
	in := d.emuBoundaryAt(pc0)
	tb.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: s.A, Idx: -1, Value: x})
	y := d.slots[s.B].Int
	in = d.emuBoundaryAt(pc0 + 1)
	tb.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: s.B, Idx: -1, Value: y})
	d.emuBoundaryAt(pc0 + 2)
	r := superApply(s.Bin, x, y)
	in = d.emuBoundaryAt(pc0 + 3)
	tb.Append(trace.Event{Kind: trace.EvWrite, Stmt: in.Stmt, Var: s.C, Idx: -1, Value: r})
	d.slots[s.C] = Value{Int: r}
}

func esLCBinS(d *dispatch, s *bytecode.SuperInstr) {
	pc0 := d.pc - int(s.W)
	tb := d.p.Tbuf
	x := d.slots[s.A].Int
	in := d.emuBoundaryAt(pc0)
	tb.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: s.A, Idx: -1, Value: x})
	d.emuBoundaryAt(pc0 + 1)
	d.emuBoundaryAt(pc0 + 2)
	r := superApply(s.Bin, x, s.K)
	in = d.emuBoundaryAt(pc0 + 3)
	tb.Append(trace.Event{Kind: trace.EvWrite, Stmt: in.Stmt, Var: s.C, Idx: -1, Value: r})
	d.slots[s.C] = Value{Int: r}
}

func esLLCmpJf(d *dispatch, s *bytecode.SuperInstr) {
	pc0 := d.pc - int(s.W)
	tb := d.p.Tbuf
	x := d.slots[s.A].Int
	in := d.emuBoundaryAt(pc0)
	tb.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: s.A, Idx: -1, Value: x})
	y := d.slots[s.B].Int
	in = d.emuBoundaryAt(pc0 + 1)
	tb.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: s.B, Idx: -1, Value: y})
	d.emuBoundaryAt(pc0 + 2)
	d.emuCmpJf(s, pc0+3, x, y)
}

func esLCCmpJf(d *dispatch, s *bytecode.SuperInstr) {
	pc0 := d.pc - int(s.W)
	x := d.slots[s.A].Int
	in := d.emuBoundaryAt(pc0)
	d.p.Tbuf.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: s.A, Idx: -1, Value: x})
	d.emuBoundaryAt(pc0 + 1)
	d.emuBoundaryAt(pc0 + 2)
	d.emuCmpJf(s, pc0+3, x, s.K)
}

func esLGCmpJf(d *dispatch, s *bytecode.SuperInstr) {
	pc0 := d.pc - int(s.W)
	tb := d.p.Tbuf
	x := d.slots[s.A].Int
	in := d.emuBoundaryAt(pc0)
	tb.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: s.A, Idx: -1, Value: x})
	y := d.v.Globals[s.B].Int
	in = d.emuBoundaryAt(pc0 + 1)
	tb.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: d.f.Fn.NumSlots + s.B, Idx: -1, Value: y})
	d.emuBoundaryAt(pc0 + 2)
	d.emuCmpJf(s, pc0+3, x, y)
}

// emuCmpJf finishes a …CmpJf window: the JmpFalse constituent's boundary,
// its EvPred when it is the statement's main predicate, and the branch.
func (d *dispatch) emuCmpJf(s *bytecode.SuperInstr, jmpPC int, x, y int64) {
	in := d.emuBoundaryAt(jmpPC)
	c := b2i(superCmp(s.Bin, x, y))
	if in.B == 1 {
		d.p.Tbuf.Append(trace.Event{Kind: trace.EvPred, Stmt: in.Stmt, Value: c})
	}
	if c == 0 {
		d.pc = s.T
	}
}

func esLLBin(d *dispatch, s *bytecode.SuperInstr) {
	pc0 := d.pc - int(s.W)
	tb := d.p.Tbuf
	x := d.slots[s.A].Int
	in := d.emuBoundaryAt(pc0)
	tb.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: s.A, Idx: -1, Value: x})
	y := d.slots[s.B].Int
	in = d.emuBoundaryAt(pc0 + 1)
	tb.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: s.B, Idx: -1, Value: y})
	d.emuBoundaryAt(pc0 + 2)
	d.stack = append(d.stack, superApply(s.Bin, x, y))
}

func esLCBin(d *dispatch, s *bytecode.SuperInstr) {
	pc0 := d.pc - int(s.W)
	x := d.slots[s.A].Int
	in := d.emuBoundaryAt(pc0)
	d.p.Tbuf.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: s.A, Idx: -1, Value: x})
	d.emuBoundaryAt(pc0 + 1)
	d.emuBoundaryAt(pc0 + 2)
	d.stack = append(d.stack, superApply(s.Bin, x, s.K))
}

func esLGBin(d *dispatch, s *bytecode.SuperInstr) {
	pc0 := d.pc - int(s.W)
	tb := d.p.Tbuf
	x := d.slots[s.A].Int
	in := d.emuBoundaryAt(pc0)
	tb.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: s.A, Idx: -1, Value: x})
	y := d.v.Globals[s.B].Int
	in = d.emuBoundaryAt(pc0 + 1)
	tb.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: d.f.Fn.NumSlots + s.B, Idx: -1, Value: y})
	d.emuBoundaryAt(pc0 + 2)
	d.stack = append(d.stack, superApply(s.Bin, x, y))
}

func esLBin(d *dispatch, s *bytecode.SuperInstr) {
	pc0 := d.pc - int(s.W)
	y := d.slots[s.A].Int
	in := d.emuBoundaryAt(pc0)
	d.p.Tbuf.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: s.A, Idx: -1, Value: y})
	d.emuBoundaryAt(pc0 + 1)
	n := len(d.stack) - 1
	d.stack[n] = superApply(s.Bin, d.stack[n], y)
}

func esCBin(d *dispatch, s *bytecode.SuperInstr) {
	pc0 := d.pc - int(s.W)
	d.emuBoundaryAt(pc0)
	d.emuBoundaryAt(pc0 + 1)
	n := len(d.stack) - 1
	d.stack[n] = superApply(s.Bin, d.stack[n], s.K)
}

func esConstStoreL(d *dispatch, s *bytecode.SuperInstr) {
	pc0 := d.pc - int(s.W)
	d.emuBoundaryAt(pc0)
	in := d.emuBoundaryAt(pc0 + 1)
	d.p.Tbuf.Append(trace.Event{Kind: trace.EvWrite, Stmt: in.Stmt, Var: s.A, Idx: -1, Value: s.K})
	d.slots[s.A] = Value{Int: s.K}
}

func esCmpJf(d *dispatch, s *bytecode.SuperInstr) {
	pc0 := d.pc - int(s.W)
	n := len(d.stack)
	x, y := d.stack[n-2], d.stack[n-1]
	d.stack = d.stack[:n-2]
	d.emuBoundaryAt(pc0)
	d.emuCmpJf(s, pc0+1, x, y)
}
