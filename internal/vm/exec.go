package vm

import (
	"fmt"

	"ppd/internal/ast"
	"ppd/internal/bytecode"
	"ppd/internal/eblock"
	"ppd/internal/logging"
	"ppd/internal/trace"
)

// ModeEmulate is the debugging-phase mode (§3.2.3): a single process
// re-executes one e-block from its prelog. Synchronization, nested-block,
// and shared-prelog instructions are delegated to the Hooks implementation
// (package emulation), which replays them from the log.
const ModeEmulate Mode = 99

// Hooks customizes instruction semantics under ModeEmulate.
type Hooks interface {
	// OnPrelog fires at a nested e-block's prelog (a loop block inside the
	// emulated interval). Returning true means the hook substituted the
	// block's postlog and moved the PC itself.
	OnPrelog(p *Proc, blockID int) (handled bool, err error)

	// OnPostlog fires at an e-block postlog. Returning stop=true ends the
	// emulated interval (the root block's own postlog).
	OnPostlog(p *Proc, blockID int, hasRet bool) (stop bool, err error)

	// OnSync replays a synchronization operation from the log. For OpRecv
	// it returns the received value.
	OnSync(p *Proc, op logging.SyncOp, obj int) (recvVal int64, err error)

	// OnCall decides whether a call re-executes or is substituted by the
	// callee's postlog (§5.2). When skipped, it applies the postlog's
	// global values and returns the logged return value.
	OnCall(p *Proc, callee *bytecode.Func, args []int64) (skip bool, ret int64, hasRet bool, err error)

	// OnShPrelog re-supplies shared-variable values at a sync-unit start
	// (§5.5), healing divergence caused by other processes' writes.
	OnShPrelog(p *Proc, unit bytecode.UnitLog) error
}

// SetHooks installs emulation hooks (ModeEmulate only).
func (v *VM) SetHooks(h Hooks) { v.hooks = h }

// StartEmuProc creates the single emulation process positioned inside fn at
// startPC with the given frame slots, and returns it. The caller (package
// emulation) initializes slots from the prelog.
func (v *VM) StartEmuProc(fn *bytecode.Func, slots []Value, startPC int) *Proc {
	p := v.newProc(fn, nil, 0)
	f := p.top()
	for i, s := range slots {
		if i < len(f.Slots) {
			f.Slots[i] = s.Clone()
		}
	}
	f.PC = startPC
	p.Tbuf = &trace.Buffer{PID: p.PID}
	return p
}

// StartEmuProcOwned is StartEmuProc for the pooled replay context: the
// caller owns slots (already laid out with the function's arrays — no
// clone) and supplies the trace buffer. The process and its root frame are
// cached on the VM and recycled across ResetEmu cycles, so a pooled
// emulation allocates nothing here.
func (v *VM) StartEmuProcOwned(fn *bytecode.Func, slots []Value, startPC int, tb *trace.Buffer) *Proc {
	p := v.emuProc
	if p == nil {
		p = &Proc{Frames: []*Frame{{Stack: make([]int64, 0, 16)}}}
		v.emuProc = p
	}
	p.PID = len(v.Procs)
	p.Frames = p.Frames[:1]
	f := p.Frames[0]
	f.Fn = fn
	f.PC = startPC
	f.Slots = slots
	f.Stack = f.Stack[:0]
	f.arrSnap = nil
	p.Status = StatusReady
	p.Err = nil
	p.lastStmt = ast.NoStmt
	p.Tbuf = tb
	v.Procs = append(v.Procs, p)
	v.ready = append(v.ready, p)
	return p
}

// RunEmu drives the single emulation process until the hooks stop it, it
// returns from its root frame, or it fails. Traced emulation (the normal
// case — StartEmuProc always attaches a buffer) runs through the
// ModeEmulate dispatch table (emudispatch.go); Options.EmuGeneric forces
// the generic loop, which is the fast path's byte-identity oracle.
func (v *VM) RunEmu(p *Proc) error {
	if !v.Opts.EmuGeneric && v.tracing(p) {
		return v.runEmuTab(p)
	}
	return v.runEmuGeneric(p)
}

// runEmuGeneric is the original stepT-driven emulation loop, kept verbatim
// as the oracle the table-driven path is pinned against. The tracing
// predicate is hoisted out of the per-instruction path: it depends only on
// the mode and the process's buffer, neither of which changes mid-run.
func (v *VM) runEmuGeneric(p *Proc) error {
	start := v.Steps
	err := v.runEmuGenericLoop(p)
	v.emuCold += v.Steps - start // every generic step is a cold dispatch
	return err
}

func (v *VM) runEmuGenericLoop(p *Proc) error {
	tracing := v.tracing(p)
	for p.Status == StatusReady {
		v.Steps++
		if v.Steps > v.Opts.MaxSteps {
			return fmt.Errorf("emulation budget exhausted")
		}
		v.stepT(p, tracing)
		if v.Failure != nil {
			return v.Failure
		}
		if v.emuStop {
			return nil
		}
	}
	return nil
}

func (v *VM) tracing(p *Proc) bool {
	return (v.Opts.Mode == ModeFullTrace || v.Opts.Mode == ModeEmulate) && p.Tbuf != nil
}

// emitStmtBoundary emits EvStmt when crossing into a new statement.
func (v *VM) emitStmtBoundary(p *Proc, in *bytecode.Instr) {
	if in.Stmt != ast.NoStmt && in.Stmt != p.lastStmt {
		p.lastStmt = in.Stmt
		p.Tbuf.Append(trace.Event{Kind: trace.EvStmt, Stmt: in.Stmt})
	}
}

// spaceIndex converts a local slot or GlobalID into the function-space
// index the trace uses (locals first, then globals).
func spaceLocal(slot int) int { return slot }

func (v *VM) spaceGlobal(fn *bytecode.Func, gid int) int { return fn.NumSlots + gid }

func (v *VM) markRead(p *Proc, gid int) {
	if v.Opts.Mode == ModeLog && v.Prog.Globals[gid].Shared {
		p.reads.Add(gid)
	}
}

func (v *VM) markWrite(p *Proc, gid int) {
	if v.Opts.Mode == ModeLog && v.Prog.Globals[gid].Shared {
		p.writes.Add(gid)
	}
}

// step executes one instruction of p, re-deriving the tracing predicate.
// It is the entry point for callers outside the slice runners (tests).
func (v *VM) step(p *Proc) { v.stepT(p, v.tracing(p)) }

// stepT executes one instruction of p with the tracing predicate already
// decided by the caller (the slice runners hoist it out of the dispatch
// path; the specialized ModeRun/ModeLog loops bypass stepT entirely for
// hot opcodes and fall back here for the rest).
func (v *VM) stepT(p *Proc, tracing bool) {
	f := p.top()
	if f.PC >= len(f.Fn.Code) {
		v.fail(p, ast.NoStmt, "pc out of range in %s", f.Fn.Name)
		return
	}
	in := &f.Fn.Code[f.PC]
	if v.Opts.BreakAt != ast.NoStmt && in.Stmt == v.Opts.BreakAt && v.Opts.Mode != ModeEmulate {
		// Halt the whole execution before this statement runs; the PC stays
		// on it so the debugger reports the stop site.
		v.BreakHit = true
		return
	}
	if tracing {
		switch in.Op {
		case bytecode.OpPrelog, bytecode.OpPostlog, bytecode.OpShPrelog, bytecode.OpNop:
			// markers produce no statement boundaries
		default:
			v.emitStmtBoundary(p, in)
		}
	}
	f.PC++

	push := func(x int64) { f.Stack = append(f.Stack, x) }
	pop := func() int64 {
		x := f.Stack[len(f.Stack)-1]
		f.Stack = f.Stack[:len(f.Stack)-1]
		return x
	}

	switch in.Op {
	case bytecode.OpNop:

	case bytecode.OpConst:
		push(int64(in.A))

	case bytecode.OpPop:
		pop()

	case bytecode.OpLoadLocal:
		val := f.Slots[in.A].Int
		push(val)
		if tracing {
			p.Tbuf.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: spaceLocal(in.A), Idx: -1, Value: val})
		}

	case bytecode.OpStoreLocal:
		val := pop()
		f.Slots[in.A] = Value{Int: val}
		if tracing {
			p.Tbuf.Append(trace.Event{Kind: trace.EvWrite, Stmt: in.Stmt, Var: spaceLocal(in.A), Idx: -1, Value: val})
		}

	case bytecode.OpLoadGlobal:
		val := v.Globals[in.A].Int
		push(val)
		v.markRead(p, in.A)
		if tracing {
			p.Tbuf.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: v.spaceGlobal(f.Fn, in.A), Idx: -1, Value: val})
		}

	case bytecode.OpStoreGlobal:
		val := pop()
		v.Globals[in.A] = Value{Int: val}
		v.markWrite(p, in.A)
		if tracing {
			p.Tbuf.Append(trace.Event{Kind: trace.EvWrite, Stmt: in.Stmt, Var: v.spaceGlobal(f.Fn, in.A), Idx: -1, Value: val})
		}

	case bytecode.OpLoadIndexedL:
		i := pop()
		arr := f.Slots[in.A].Arr
		if i < 0 || i >= int64(len(arr)) {
			v.fail(p, in.Stmt, "array index %d out of range [0,%d)", i, len(arr))
			return
		}
		push(arr[i])
		if tracing {
			p.Tbuf.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: spaceLocal(in.A), Idx: int(i), Value: arr[i]})
		}

	case bytecode.OpStoreIndexedL:
		val := pop()
		i := pop()
		arr := f.Slots[in.A].Arr
		if i < 0 || i >= int64(len(arr)) {
			v.fail(p, in.Stmt, "array index %d out of range [0,%d)", i, len(arr))
			return
		}
		arr[i] = val
		if f.arrSnap != nil {
			f.arrSnap[in.A].dirty = true
		}
		if tracing {
			p.Tbuf.Append(trace.Event{Kind: trace.EvWrite, Stmt: in.Stmt, Var: spaceLocal(in.A), Idx: int(i), Value: val})
		}

	case bytecode.OpLoadIndexedG:
		i := pop()
		arr := v.Globals[in.A].Arr
		if i < 0 || i >= int64(len(arr)) {
			v.fail(p, in.Stmt, "array index %d out of range [0,%d)", i, len(arr))
			return
		}
		push(arr[i])
		v.markRead(p, in.A)
		if tracing {
			p.Tbuf.Append(trace.Event{Kind: trace.EvRead, Stmt: in.Stmt, Var: v.spaceGlobal(f.Fn, in.A), Idx: int(i), Value: arr[i]})
		}

	case bytecode.OpStoreIndexedG:
		val := pop()
		i := pop()
		arr := v.Globals[in.A].Arr
		if i < 0 || i >= int64(len(arr)) {
			v.fail(p, in.Stmt, "array index %d out of range [0,%d)", i, len(arr))
			return
		}
		arr[i] = val
		v.markWrite(p, in.A)
		if v.gDirty != nil {
			v.gDirty[in.A] = true
		}
		if tracing {
			p.Tbuf.Append(trace.Event{Kind: trace.EvWrite, Stmt: in.Stmt, Var: v.spaceGlobal(f.Fn, in.A), Idx: int(i), Value: val})
		}

	case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpMod,
		bytecode.OpEq, bytecode.OpNe, bytecode.OpLt, bytecode.OpLe, bytecode.OpGt, bytecode.OpGe:
		y := pop()
		x := pop()
		var r int64
		switch in.Op {
		case bytecode.OpAdd:
			r = x + y
		case bytecode.OpSub:
			r = x - y
		case bytecode.OpMul:
			r = x * y
		case bytecode.OpDiv:
			if y == 0 {
				v.fail(p, in.Stmt, "division by zero")
				return
			}
			r = x / y
		case bytecode.OpMod:
			if y == 0 {
				v.fail(p, in.Stmt, "modulo by zero")
				return
			}
			r = x % y
		case bytecode.OpEq:
			r = b2i(x == y)
		case bytecode.OpNe:
			r = b2i(x != y)
		case bytecode.OpLt:
			r = b2i(x < y)
		case bytecode.OpLe:
			r = b2i(x <= y)
		case bytecode.OpGt:
			r = b2i(x > y)
		case bytecode.OpGe:
			r = b2i(x >= y)
		}
		push(r)

	case bytecode.OpNeg:
		push(-pop())
	case bytecode.OpNot:
		push(b2i(pop() == 0))

	case bytecode.OpJmp:
		f.PC = in.A

	case bytecode.OpJmpFalse:
		c := pop()
		if tracing && in.B == 1 {
			p.Tbuf.Append(trace.Event{Kind: trace.EvPred, Stmt: in.Stmt, Value: c})
		}
		if c == 0 {
			f.PC = in.A
		}

	case bytecode.OpJmpTrue:
		if pop() != 0 {
			f.PC = in.A
		}

	case bytecode.OpCall:
		callee := v.Prog.Funcs[in.A]
		args := v.popArgs(f, in.B, tracing || v.Opts.Mode == ModeEmulate)
		if v.Opts.Mode == ModeEmulate {
			// The hook appends EvCallSkipped and the substituted postlog's
			// EvWrite events itself when it skips.
			skip, ret, hasRet, err := v.hooks.OnCall(p, callee, args)
			if err != nil {
				v.fail(p, in.Stmt, "emulation: %v", err)
				return
			}
			if skip {
				if hasRet {
					push(ret)
				}
				p.lastStmt = ast.NoStmt
				return
			}
		}
		if len(p.Frames) > 4096 {
			v.fail(p, in.Stmt, "call stack overflow")
			return
		}
		if tracing {
			p.Tbuf.Append(trace.Event{Kind: trace.EvCallBegin, Stmt: in.Stmt,
				FuncIdx: callee.Idx, Args: args})
			p.lastStmt = ast.NoStmt
		}
		p.Frames = append(p.Frames, v.newFrame(p, callee, args))

	case bytecode.OpRet, bytecode.OpRetValue:
		var ret int64
		hasRet := in.Op == bytecode.OpRetValue
		if hasRet {
			ret = pop()
		}
		if len(p.Frames) == 1 {
			v.finish(p)
			return
		}
		p.Frames = p.Frames[:len(p.Frames)-1]
		caller := p.top()
		if hasRet {
			caller.Stack = append(caller.Stack, ret)
		}
		if tracing {
			p.Tbuf.Append(trace.Event{Kind: trace.EvCallEnd,
				Stmt: caller.Fn.Code[caller.PC-1].Stmt, Value: ret, HasValue: hasRet})
			p.lastStmt = ast.NoStmt
		}
		v.releaseFrame(p, f)

	case bytecode.OpSpawn:
		// Spawn arguments are copied into the child's slots immediately, so
		// the scratch buffer is safe in every mode (no event retains them).
		args := v.popArgs(f, in.B, false)
		if v.Opts.Mode == ModeEmulate {
			if _, err := v.hooks.OnSync(p, logging.OpSpawn, -1); err != nil {
				v.fail(p, in.Stmt, "emulation: %v", err)
				return
			}
			if tracing {
				p.Tbuf.Append(trace.Event{Kind: trace.EvSync, Stmt: in.Stmt, Op: logging.OpSpawn, Obj: in.A})
			}
			return
		}
		gsn := v.nextGsn()
		child := v.newProc(v.Prog.Funcs[in.A], args, gsn)
		v.logSyncEvent(p, logging.OpSpawn, child.PID, in.Stmt, gsn, 0, int64(in.A))
		if v.Opts.Mode == ModeFullTrace {
			p.Tbuf.Append(trace.Event{Kind: trace.EvSync, Stmt: in.Stmt, Op: logging.OpSpawn, Obj: child.PID})
		}

	case bytecode.OpSemP:
		v.execSemP(p, in)
	case bytecode.OpSemV:
		v.execSemV(p, in)
	case bytecode.OpSend:
		v.execSend(p, in, pop())
	case bytecode.OpRecv:
		v.execRecv(p, in)

	case bytecode.OpPrintStr:
		if v.Opts.Output != nil && v.Opts.Mode != ModeEmulate {
			fmt.Fprint(v.Opts.Output, v.Prog.Strings[in.A])
		}
	case bytecode.OpPrintVal:
		val := pop()
		if v.Opts.Output != nil && v.Opts.Mode != ModeEmulate {
			fmt.Fprint(v.Opts.Output, val)
		}
	case bytecode.OpPrintNl:
		if v.Opts.Output != nil && v.Opts.Mode != ModeEmulate {
			fmt.Fprintln(v.Opts.Output)
		}

	case bytecode.OpPrelog:
		switch v.Opts.Mode {
		case ModeLog:
			v.emitPrelog(p, in.A, in.Stmt)
		case ModeEmulate:
			handled, err := v.hooks.OnPrelog(p, in.A)
			if err != nil {
				v.fail(p, in.Stmt, "emulation: %v", err)
			}
			_ = handled
		}

	case bytecode.OpPostlog:
		switch v.Opts.Mode {
		case ModeLog:
			v.emitPostlog(p, in.A, in.B == 1, in.Stmt)
		case ModeEmulate:
			stop, err := v.hooks.OnPostlog(p, in.A, in.B == 1)
			if err != nil {
				v.fail(p, in.Stmt, "emulation: %v", err)
				return
			}
			if stop {
				if p.Tbuf != nil {
					p.Tbuf.Append(trace.Event{Kind: trace.EvEnd, Stmt: in.Stmt})
				}
				v.emuStop = true
			}
		}

	case bytecode.OpShPrelog:
		switch v.Opts.Mode {
		case ModeLog:
			v.emitShPrelog(p, f.Fn, in.A)
		case ModeEmulate:
			if err := v.hooks.OnShPrelog(p, f.Fn.Units[in.A]); err != nil {
				v.fail(p, in.Stmt, "emulation: %v", err)
			}
		}

	default:
		v.fail(p, in.Stmt, "illegal opcode %v", in.Op)
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// popArgs pops n call arguments off f's stack (leftmost deepest). Unless
// retain is set — full-trace events and emulation hooks keep the slice — the
// VM-wide scratch buffer is reused: every callee copies its arguments into
// frame slots before the next call can overwrite the scratch.
func (v *VM) popArgs(f *Frame, n int, retain bool) []int64 {
	var args []int64
	if retain {
		args = make([]int64, n)
	} else {
		if cap(v.argScratch) < n {
			v.argScratch = make([]int64, n)
		}
		args = v.argScratch[:n]
	}
	base := len(f.Stack) - n
	copy(args, f.Stack[base:])
	f.Stack = f.Stack[:base]
	return args
}

// logSyncEvent appends a sync record for p carrying the just-terminated
// internal edge's read/write sets (§6.3). The record is built only under
// ModeLog — uninstrumented runs pay nothing per sync event — and comes from
// the book's arena, not the heap. p need not be the process currently
// executing (unblock records are written for the woken process).
func (v *VM) logSyncEvent(p *Proc, op logging.SyncOp, obj int, stmt ast.StmtID, gsn, from uint64, val int64) {
	if v.Opts.Mode != ModeLog {
		return
	}
	rec := p.Book.NewRecord()
	rec.Kind, rec.Op, rec.Obj = logging.RecSync, op, obj
	rec.Stmt, rec.Gsn, rec.FromGsn, rec.Value = stmt, gsn, from, val
	p.fillEdgeSets(rec)
	p.Book.Append(rec)
}

// ------------------------------------------------------------ logging
//
// The emit helpers draw records and pair slices from the book's arena and
// snapshot arrays copy-on-write: an array value is deep-copied only when it
// was written since its last snapshot (the dirty bits set by the indexed
// stores). Snapshot slices are shared between the live cache and the log —
// safe because log values are immutable by contract (every downstream
// consumer Clones before mutating).

// snapGlobal returns global gid's value for logging, reusing the cached
// array snapshot when the array is clean.
func (v *VM) snapGlobal(gid int) Value {
	g := v.Globals[gid]
	if g.Arr == nil {
		return g
	}
	if v.gDirty[gid] || v.gSnap[gid] == nil {
		s := make([]int64, len(g.Arr))
		copy(s, g.Arr)
		v.gSnap[gid] = s
		v.gDirty[gid] = false
	}
	return Value{Arr: v.gSnap[gid]}
}

// snapLocal is snapGlobal's per-frame counterpart for local slots.
func (f *Frame) snapLocal(slot int) Value {
	val := f.Slots[slot]
	if val.Arr == nil {
		return val
	}
	if f.arrSnap == nil {
		return val.Clone()
	}
	s := &f.arrSnap[slot]
	if s.dirty || s.arr == nil {
		a := make([]int64, len(val.Arr))
		copy(a, val.Arr)
		s.arr = a
		s.dirty = false
	}
	return Value{Arr: s.arr}
}

func (v *VM) emitPrelog(p *Proc, blockID int, stmt ast.StmtID) {
	meta := v.Prog.Blocks[blockID]
	f := p.top()
	rec := p.Book.NewRecord()
	rec.Kind, rec.Block, rec.Stmt = logging.RecPrelog, eblock.ID(blockID), stmt
	if n := len(meta.UsedLocals); n > 0 {
		rec.Locals = p.Book.TakePairs(rec.Locals, n)
		for _, slot := range meta.UsedLocals {
			rec.Locals = append(rec.Locals, logging.VarVal{Idx: slot, Val: f.snapLocal(slot)})
		}
	}
	if n := len(meta.UsedGlobals); n > 0 {
		rec.Globals = p.Book.TakePairs(rec.Globals, n)
		for _, gid := range meta.UsedGlobals {
			rec.Globals = append(rec.Globals, logging.VarVal{Idx: gid, Val: v.snapGlobal(gid)})
		}
	}
	p.Book.Append(rec)
}

func (v *VM) emitPostlog(p *Proc, blockID int, retOnStack bool, stmt ast.StmtID) {
	meta := v.Prog.Blocks[blockID]
	f := p.top()
	rec := p.Book.NewRecord()
	rec.Kind, rec.Block, rec.Stmt = logging.RecPostlog, eblock.ID(blockID), stmt
	if n := len(meta.DefinedLocals); n > 0 {
		rec.Locals = p.Book.TakePairs(rec.Locals, n)
		for _, slot := range meta.DefinedLocals {
			rec.Locals = append(rec.Locals, logging.VarVal{Idx: slot, Val: f.snapLocal(slot)})
		}
	}
	if n := len(meta.DefinedGlobals); n > 0 {
		rec.Globals = p.Book.TakePairs(rec.Globals, n)
		for _, gid := range meta.DefinedGlobals {
			rec.Globals = append(rec.Globals, logging.VarVal{Idx: gid, Val: v.snapGlobal(gid)})
		}
	}
	if retOnStack {
		rec.SetRet(Value{Int: f.Stack[len(f.Stack)-1]})
	}
	p.Book.Append(rec)
}

func (v *VM) emitShPrelog(p *Proc, fn *bytecode.Func, unitIdx int) {
	u := fn.Units[unitIdx]
	rec := p.Book.NewRecord()
	rec.Kind, rec.Stmt = logging.RecShPrelog, u.Stmt
	rec.Globals = p.Book.TakePairs(rec.Globals, len(u.Globals))
	for _, gid := range u.Globals {
		rec.Globals = append(rec.Globals, logging.VarVal{Idx: gid, Val: v.snapGlobal(gid)})
	}
	p.Book.Append(rec)
}
