package vm

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ppd/internal/bytecode"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/mplgen"
	"ppd/internal/parallel"
	"ppd/internal/race"
	"ppd/internal/workloads"
)

// fusedRun is one observed execution: everything the debugging phase (or a
// user) can see from a ModeLog run. The fused-vs-unfused tests compare two
// of these field by field — if all fields match, fusion was invisible.
type fusedRun struct {
	log      []byte
	output   string
	globals  string
	failure  string
	deadlock bool
}

// runLogged compiles src with the given fusion table (nil = fusion
// disabled) and runs it under ModeLog, capturing every observable.
func runLogged(t testing.TB, name, src string, cfg eblock.Config, tab *bytecode.FusionTable, seed int64, quantum int, maxSteps int64) *fusedRun {
	t.Helper()
	art, err := compile.CompileFusedSource(name, src, cfg, tab)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	var out bytes.Buffer
	v := New(art.Prog, Options{Mode: ModeLog, Seed: seed, Quantum: quantum, MaxSteps: maxSteps, Output: &out})
	runErr := v.Run()
	r := &fusedRun{output: out.String(), deadlock: v.Deadlock}
	if runErr != nil {
		r.failure = runErr.Error()
	}
	r.globals = fmt.Sprintf("%v", v.Snapshot())
	var buf bytes.Buffer
	if err := v.Log.Write(&buf); err != nil {
		t.Fatalf("write log %s: %v", name, err)
	}
	r.log = buf.Bytes()
	return r
}

func diffRuns(t testing.TB, name string, fused, plain *fusedRun) {
	t.Helper()
	if !bytes.Equal(fused.log, plain.log) {
		t.Errorf("%s: fused log differs from unfused (fused %d bytes, unfused %d, first diff at %d)",
			name, len(fused.log), len(plain.log), firstDiff(fused.log, plain.log))
	}
	if fused.output != plain.output {
		t.Errorf("%s: program output differs\nfused:   %q\nunfused: %q", name, fused.output, plain.output)
	}
	if fused.globals != plain.globals {
		t.Errorf("%s: final globals differ\nfused:   %s\nunfused: %s", name, fused.globals, plain.globals)
	}
	if fused.failure != plain.failure {
		t.Errorf("%s: failure differs\nfused:   %q\nunfused: %q", name, fused.failure, plain.failure)
	}
	if fused.deadlock != plain.deadlock {
		t.Errorf("%s: deadlock fused=%v unfused=%v", name, fused.deadlock, plain.deadlock)
	}
}

// TestLogGoldenFusedVsUnfused is the tentpole's gate: across the whole
// golden matrix, a fused run and an unfused run of the same program must
// be indistinguishable — byte-identical logs, identical output, identical
// final globals — and both must match the pinned golden file. Fusion is a
// dispatch-cost optimization only; it must never change what the
// execution phase records.
func TestLogGoldenFusedVsUnfused(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			fused := runLogged(t, tc.wl.Name, tc.wl.Src, tc.cfg, bytecode.DefaultFusionTable(), tc.seed, tc.quantum, 0)
			plain := runLogged(t, tc.wl.Name, tc.wl.Src, tc.cfg, nil, tc.seed, tc.quantum, 0)
			diffRuns(t, tc.name, fused, plain)
			want, err := os.ReadFile(filepath.Join("testdata", "golden", tc.name+".ppdlog"))
			if err != nil {
				t.Fatalf("missing golden file: %v", err)
			}
			if !bytes.Equal(fused.log, want) {
				t.Errorf("%s: fused log differs from pinned golden (first diff at %d)",
					tc.name, firstDiff(fused.log, want))
			}
		})
	}
}

// raceReport renders the detector output for one logged run so two runs
// can be compared as strings.
func raceReport(t testing.TB, name, src string, cfg eblock.Config, tab *bytecode.FusionTable, seed int64, quantum int) (naive, indexed string) {
	t.Helper()
	art, err := compile.CompileFusedSource(name, src, cfg, tab)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	vmr := New(art.Prog, Options{Mode: ModeLog, Seed: seed, Quantum: quantum})
	if err := vmr.Run(); err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	g := parallel.Build(vmr.Log, len(art.Prog.Globals))
	var a, b bytes.Buffer
	for _, r := range race.Naive(g) {
		fmt.Fprintln(&a, r)
	}
	for _, r := range race.Indexed(g) {
		fmt.Fprintln(&b, r)
	}
	return a.String(), b.String()
}

// TestRacesFusedVsUnfused pins the debugging phase's view: the race
// reports produced from a fused run's log equal those from an unfused
// run's log, for both detectors, on a racy and a sync-heavy workload.
func TestRacesFusedVsUnfused(t *testing.T) {
	cases := []*workloads.Workload{
		workloads.RacyCounter(3, 50, false),
		workloads.Sharded(4, 40),
	}
	for _, wl := range cases {
		t.Run(wl.Name, func(t *testing.T) {
			fn, fi := raceReport(t, wl.Name, wl.Src, eblock.DefaultConfig(), bytecode.DefaultFusionTable(), 3, 7)
			pn, pi := raceReport(t, wl.Name, wl.Src, eblock.DefaultConfig(), nil, 3, 7)
			if fn != pn {
				t.Errorf("naive race report differs\nfused:\n%s\nunfused:\n%s", fn, pn)
			}
			if fi != pi {
				t.Errorf("indexed race report differs\nfused:\n%s\nunfused:\n%s", fi, pi)
			}
		})
	}
}

// TestVetFusedVsUnfused checks that the static-analysis report is
// unaffected by fusion (vet runs on the front-end layers, but the gate is
// part of the contract, so pin it end to end through the public API).
func TestVetFusedVsUnfused(t *testing.T) {
	wl := workloads.RacyCounter(3, 50, false)
	fused, err := compile.CompileFusedSource(wl.Name, wl.Src, eblock.DefaultConfig(), bytecode.DefaultFusionTable())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := compile.CompileFusedSource(wl.Name, wl.Src, eblock.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fused.Vet(nil).Text(), plain.Vet(nil).Text(); got != want {
		t.Errorf("vet report differs\nfused:\n%s\nunfused:\n%s", got, want)
	}
}

// TestFusionCoverage guards against the fusion pass silently matching
// nothing: every standard workload must contain superinstructions when
// compiled with the default table.
func TestFusionCoverage(t *testing.T) {
	for _, wl := range workloads.Standard() {
		art, err := compile.CompileFusedSource(wl.Name, wl.Src, eblock.DefaultConfig(), bytecode.DefaultFusionTable())
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		if n := art.Prog.NumSuper(); n == 0 {
			t.Errorf("%s: fusion matched nothing", wl.Name)
		}
	}
}

// FuzzFusedEquivalence is the differential fuzz target: any MPL program
// the generator or the fuzzer mutates to must behave byte-identically
// fused and unfused. The seed corpus is the standard workloads plus the
// racy 15-program matrix and the difftest generator configs, so the
// fuzzer starts from every sync/branch shape the project exercises.
func FuzzFusedEquivalence(f *testing.F) {
	for _, wl := range workloads.Standard() {
		f.Add(wl.Src, int64(0), 7)
	}
	for seed := int64(0); seed < 15; seed++ {
		f.Add(mplgen.Generate(seed, mplgen.RacyConfig()), seed, 5)
	}
	for seed := int64(0); seed < 5; seed++ {
		f.Add(mplgen.Generate(seed, mplgen.DefaultConfig()), seed, 11)
		f.Add(mplgen.Generate(seed, mplgen.ParallelConfig()), seed, 3)
	}
	f.Fuzz(func(t *testing.T, src string, seed int64, quantum int) {
		if quantum < 1 || quantum > 1000 {
			return
		}
		if _, err := compile.CompileFusedSource("fuzz.mpl", src, eblock.DefaultConfig(), nil); err != nil {
			return // not a valid program; nothing to compare
		}
		const maxSteps = 2_000_000 // bound runaway loops; both runs share it
		fused := runLogged(t, "fuzz.mpl", src, eblock.DefaultConfig(), bytecode.DefaultFusionTable(), seed, quantum, maxSteps)
		plain := runLogged(t, "fuzz.mpl", src, eblock.DefaultConfig(), nil, seed, quantum, maxSteps)
		diffRuns(t, "fuzz", fused, plain)
	})
}
