package vm_test

import (
	"os"
	"path/filepath"
	"testing"

	"ppd/internal/bytecode"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/obs"
	"ppd/internal/vm"
	"ppd/internal/workloads"
)

// profileFusionHits compiles every standard workload with every candidate
// shape enabled and runs it under ModeRun at seeds 0 and 3 with the
// dispatch profiler attached, returning the summed per-shape hit counts.
// Compiling with AllPatterns makes the result independent of the
// checked-in table, so regeneration is a one-step fixed point; the VM is
// deterministic, so the counts are too.
func profileFusionHits(t *testing.T) []int64 {
	t.Helper()
	hits := make([]int64, bytecode.NumSuperOps)
	for _, w := range workloads.Standard() {
		art, err := compile.CompileFusedSource(w.Name, w.Src, eblock.DefaultConfig(), bytecode.AllPatterns())
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for _, seed := range []int64{0, 3} {
			st := obs.NewOpStats(int(bytecode.NumOps), int(bytecode.NumSuperOps))
			v := vm.New(art.Prog, vm.Options{Mode: vm.ModeRun, Seed: seed, OpProfile: st})
			if err := v.Run(); err != nil {
				t.Fatalf("%s seed %d: %v", w.Name, seed, err)
			}
			for op, n := range st.Super {
				hits[op] += n
			}
		}
	}
	return hits
}

// TestFusionTableFresh pins the checked-in profile-guided fusion table to
// what profiling the standard workloads produces today, mirroring the
// golden-log workflow: PPD_UPDATE_FUSION=1 regenerates
// internal/bytecode/fusiontable_gen.go, and CI fails on any diff so the
// table can never silently go stale. It lives in internal/vm (not
// bytecode) because profiling needs the compiler and the VM.
func TestFusionTableFresh(t *testing.T) {
	want := bytecode.FormatFusionTableSource(profileFusionHits(t))
	path := filepath.Join("..", "bytecode", "fusiontable_gen.go")
	if os.Getenv("PPD_UPDATE_FUSION") != "" {
		if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("fusiontable_gen.go is stale; regenerate with PPD_UPDATE_FUSION=1 go test ./internal/vm -run TestFusionTableFresh")
	}
}
