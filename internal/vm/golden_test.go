package vm

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/workloads"
)

// goldenCases is the byte-identity matrix: every standard workload plus a
// sync-heavy sharded shape, across seeds and quanta that change the
// interleaving. The encoded ModeLog output for each case is pinned in
// testdata/golden; any change to the execution phase must keep the logs
// byte-identical (regenerate deliberately with PPD_UPDATE_GOLDEN=1).
func goldenCases() []struct {
	name    string
	wl      *workloads.Workload
	cfg     eblock.Config
	seed    int64
	quantum int
} {
	return []struct {
		name    string
		wl      *workloads.Workload
		cfg     eblock.Config
		seed    int64
		quantum int
	}{
		{"matmul_s0_q5", workloads.Matmul(16), eblock.DefaultConfig(), 0, 5},
		{"matmul_s3_q40", workloads.Matmul(16), eblock.DefaultConfig(), 3, 40},
		{"prodcons_s0_q5", workloads.ProdCons(600), eblock.DefaultConfig(), 0, 5},
		{"prodcons_s3_q40", workloads.ProdCons(600), eblock.DefaultConfig(), 3, 40},
		{"tokenring_s0_q5", workloads.TokenRing(4, 100), eblock.DefaultConfig(), 0, 5},
		{"tokenring_s3_q40", workloads.TokenRing(4, 100), eblock.DefaultConfig(), 3, 40},
		{"divide_s0_q5", workloads.Divide(11), eblock.DefaultConfig(), 0, 5},
		{"divide_s3_q40", workloads.Divide(11), eblock.DefaultConfig(), 3, 40},
		{"sharded_s0_q3", workloads.Sharded(4, 40), eblock.Config{}, 0, 3},
	}
}

func goldenLogBytes(t *testing.T, wl *workloads.Workload, cfg eblock.Config, seed int64, quantum int) []byte {
	t.Helper()
	art, err := compile.CompileSource(wl.Name, wl.Src, cfg)
	if err != nil {
		t.Fatalf("compile %s: %v", wl.Name, err)
	}
	v := New(art.Prog, Options{Mode: ModeLog, Seed: seed, Quantum: quantum})
	if err := v.Run(); err != nil {
		t.Fatalf("run %s: %v", wl.Name, err)
	}
	var buf bytes.Buffer
	if err := v.Log.Write(&buf); err != nil {
		t.Fatalf("write log %s: %v", wl.Name, err)
	}
	return buf.Bytes()
}

// TestLogGoldenByteIdentical pins the execution phase's ModeLog output
// against the pre-optimization logs: interpreter or logging changes must
// not alter a single byte at any seed or quantum.
func TestLogGoldenByteIdentical(t *testing.T) {
	update := os.Getenv("PPD_UPDATE_GOLDEN") != ""
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			got := goldenLogBytes(t, tc.wl, tc.cfg, tc.seed, tc.quantum)
			path := filepath.Join("testdata", "golden", tc.name+".ppdlog")
			if update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with PPD_UPDATE_GOLDEN=1 to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("log bytes differ from golden %s: got %d bytes, want %d bytes (first diff at %d)",
					path, len(got), len(want), firstDiff(got, want))
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestLogDeterministic guards the golden matrix's premise: the same seed
// and quantum reproduce the same interleaving and therefore the same log.
func TestLogDeterministic(t *testing.T) {
	tc := goldenCases()[8] // sharded: the most scheduling-sensitive case
	a := goldenLogBytes(t, tc.wl, tc.cfg, tc.seed, tc.quantum)
	b := goldenLogBytes(t, tc.wl, tc.cfg, tc.seed, tc.quantum)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed+quantum produced different logs")
	}
}

var _ = fmt.Sprintf // keep fmt for debugging helpers
