package vm

import (
	"ppd/internal/ast"
)

// Mode-specialized interpreter loops.
//
// The generic step() re-derives three predicates on every instruction: which
// mode is running, whether a breakpoint is armed, and whether the process is
// traced. None of them can change mid-execution, so New decides a sliceKind
// once and loop() dispatches each scheduling slice straight into a loop with
// those answers baked in. ModeRun and ModeLog run through the table-driven
// dispatcher (dispatch.go): per-opcode func-value tables plus the
// superinstruction side table, with the generic step as the cold-path oracle
// for calls, returns, spawns, blocking synchronization, and printing.
//
// The specialized paths must be behaviorally identical to runSliceGeneric:
// same step counts, same failure sites, and byte-identical ModeLog output
// (pinned by TestLogGoldenByteIdentical and the fused-vs-unfused matrix).

// sliceKind selects the per-slice interpreter loop.
type sliceKind int

const (
	sliceGeneric sliceKind = iota // breakpoints, emulation: full per-step checks
	sliceRun                      // ModeRun, no breakpoint: dispatch tables
	sliceLog                      // ModeLog, no breakpoint: dispatch tables
	sliceTrace                    // ModeFullTrace, no breakpoint
)

// pickSliceKind decides the specialization once per execution. A breakpoint
// forces the generic loop: only step() checks BreakAt.
func pickSliceKind(opts Options) sliceKind {
	if opts.BreakAt != ast.NoStmt {
		return sliceGeneric
	}
	switch opts.Mode {
	case ModeRun:
		return sliceRun
	case ModeLog:
		return sliceLog
	case ModeFullTrace:
		return sliceTrace
	}
	return sliceGeneric
}

// runSliceGeneric is the reference slice: one generic step per instruction.
func (v *VM) runSliceGeneric(p *Proc) {
	for q := 0; q < v.Opts.Quantum && p.Status == StatusReady; q++ {
		v.Steps++
		if v.Steps > v.Opts.MaxSteps {
			v.fail(p, ast.NoStmt, "instruction budget exhausted")
			return
		}
		v.step(p)
		if v.Failure != nil || v.BreakHit {
			return
		}
	}
}

// runSliceTrace hoists the tracing predicate out of the dispatch path; the
// per-instruction work is otherwise the generic step (every opcode emits
// events, so there is no hot/cold split worth making).
func (v *VM) runSliceTrace(p *Proc) {
	tracing := v.tracing(p)
	for q := 0; q < v.Opts.Quantum && p.Status == StatusReady; q++ {
		v.Steps++
		if v.Steps > v.Opts.MaxSteps {
			v.fail(p, ast.NoStmt, "instruction budget exhausted")
			return
		}
		v.stepT(p, tracing)
		if v.Failure != nil {
			return
		}
	}
}
