package vm

import (
	"ppd/internal/ast"
	"ppd/internal/bytecode"
)

// Mode-specialized interpreter loops.
//
// The generic step() re-derives three predicates on every instruction: which
// mode is running, whether a breakpoint is armed, and whether the process is
// traced. None of them can change mid-execution, so New decides a sliceKind
// once and loop() dispatches each scheduling slice straight into a loop with
// those answers baked in. ModeRun and ModeLog additionally keep the top
// frame's PC and operand stack in locals across instructions, inline the hot
// opcodes, and fall back to the generic step only for the cold ones (calls,
// returns, spawns, synchronization, printing) — after which the cached frame
// state is reloaded, since the top frame may have changed.
//
// The specialized loops must be behaviorally identical to runSliceGeneric:
// same step counts, same failure sites, and byte-identical ModeLog output
// (pinned by TestLogGoldenByteIdentical).

// sliceKind selects the per-slice interpreter loop.
type sliceKind int

const (
	sliceGeneric sliceKind = iota // breakpoints, emulation: full per-step checks
	sliceRun                      // ModeRun, no breakpoint
	sliceLog                      // ModeLog, no breakpoint
	sliceTrace                    // ModeFullTrace, no breakpoint
)

// pickSliceKind decides the specialization once per execution. A breakpoint
// forces the generic loop: only step() checks BreakAt.
func pickSliceKind(opts Options) sliceKind {
	if opts.BreakAt != ast.NoStmt {
		return sliceGeneric
	}
	switch opts.Mode {
	case ModeRun:
		return sliceRun
	case ModeLog:
		return sliceLog
	case ModeFullTrace:
		return sliceTrace
	}
	return sliceGeneric
}

// runSliceGeneric is the reference slice: one generic step per instruction.
func (v *VM) runSliceGeneric(p *Proc) {
	for q := 0; q < v.Opts.Quantum && p.Status == StatusReady; q++ {
		v.Steps++
		if v.Steps > v.Opts.MaxSteps {
			v.fail(p, ast.NoStmt, "instruction budget exhausted")
			return
		}
		v.step(p)
		if v.Failure != nil || v.BreakHit {
			return
		}
	}
}

// runSliceTrace hoists the tracing predicate out of the dispatch path; the
// per-instruction work is otherwise the generic step (every opcode emits
// events, so there is no hot/cold split worth making).
func (v *VM) runSliceTrace(p *Proc) {
	tracing := v.tracing(p)
	for q := 0; q < v.Opts.Quantum && p.Status == StatusReady; q++ {
		v.Steps++
		if v.Steps > v.Opts.MaxSteps {
			v.fail(p, ast.NoStmt, "instruction budget exhausted")
			return
		}
		v.stepT(p, tracing)
		if v.Failure != nil {
			return
		}
	}
}

// runSliceRun is the uninstrumented loop: no logging, no tracing, no
// breakpoints. PC and the operand stack live in locals; instrumentation
// markers are pure no-ops.
func (v *VM) runSliceRun(p *Proc) {
	f := p.top()
	code := f.Fn.Code
	slots := f.Slots
	stack := f.Stack
	pc := f.PC

	for q := 0; q < v.Opts.Quantum; q++ {
		v.Steps++
		if v.Steps > v.Opts.MaxSteps {
			f.PC, f.Stack = pc, stack
			v.fail(p, ast.NoStmt, "instruction budget exhausted")
			return
		}
		if pc >= len(code) {
			f.PC, f.Stack = pc, stack
			v.fail(p, ast.NoStmt, "pc out of range in %s", f.Fn.Name)
			return
		}
		in := &code[pc]
		pc++

		switch in.Op {
		case bytecode.OpNop, bytecode.OpPrelog, bytecode.OpPostlog, bytecode.OpShPrelog:
			// instrumentation markers cost nothing when not logging

		case bytecode.OpConst:
			stack = append(stack, int64(in.A))
		case bytecode.OpPop:
			stack = stack[:len(stack)-1]

		case bytecode.OpLoadLocal:
			stack = append(stack, slots[in.A].Int)
		case bytecode.OpStoreLocal:
			slots[in.A] = Value{Int: stack[len(stack)-1]}
			stack = stack[:len(stack)-1]
		case bytecode.OpLoadGlobal:
			stack = append(stack, v.Globals[in.A].Int)
		case bytecode.OpStoreGlobal:
			v.Globals[in.A] = Value{Int: stack[len(stack)-1]}
			stack = stack[:len(stack)-1]

		case bytecode.OpLoadIndexedL:
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			arr := slots[in.A].Arr
			if i < 0 || i >= int64(len(arr)) {
				f.PC, f.Stack = pc, stack
				v.fail(p, in.Stmt, "array index %d out of range [0,%d)", i, len(arr))
				return
			}
			stack = append(stack, arr[i])
		case bytecode.OpStoreIndexedL:
			n := len(stack)
			val, i := stack[n-1], stack[n-2]
			stack = stack[:n-2]
			arr := slots[in.A].Arr
			if i < 0 || i >= int64(len(arr)) {
				f.PC, f.Stack = pc, stack
				v.fail(p, in.Stmt, "array index %d out of range [0,%d)", i, len(arr))
				return
			}
			arr[i] = val
		case bytecode.OpLoadIndexedG:
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			arr := v.Globals[in.A].Arr
			if i < 0 || i >= int64(len(arr)) {
				f.PC, f.Stack = pc, stack
				v.fail(p, in.Stmt, "array index %d out of range [0,%d)", i, len(arr))
				return
			}
			stack = append(stack, arr[i])
		case bytecode.OpStoreIndexedG:
			n := len(stack)
			val, i := stack[n-1], stack[n-2]
			stack = stack[:n-2]
			arr := v.Globals[in.A].Arr
			if i < 0 || i >= int64(len(arr)) {
				f.PC, f.Stack = pc, stack
				v.fail(p, in.Stmt, "array index %d out of range [0,%d)", i, len(arr))
				return
			}
			arr[i] = val

		case bytecode.OpAdd:
			n := len(stack)
			stack[n-2] += stack[n-1]
			stack = stack[:n-1]
		case bytecode.OpSub:
			n := len(stack)
			stack[n-2] -= stack[n-1]
			stack = stack[:n-1]
		case bytecode.OpMul:
			n := len(stack)
			stack[n-2] *= stack[n-1]
			stack = stack[:n-1]
		case bytecode.OpDiv:
			n := len(stack)
			if stack[n-1] == 0 {
				stack = stack[:n-2]
				f.PC, f.Stack = pc, stack
				v.fail(p, in.Stmt, "division by zero")
				return
			}
			stack[n-2] /= stack[n-1]
			stack = stack[:n-1]
		case bytecode.OpMod:
			n := len(stack)
			if stack[n-1] == 0 {
				stack = stack[:n-2]
				f.PC, f.Stack = pc, stack
				v.fail(p, in.Stmt, "modulo by zero")
				return
			}
			stack[n-2] %= stack[n-1]
			stack = stack[:n-1]
		case bytecode.OpEq:
			n := len(stack)
			stack[n-2] = b2i(stack[n-2] == stack[n-1])
			stack = stack[:n-1]
		case bytecode.OpNe:
			n := len(stack)
			stack[n-2] = b2i(stack[n-2] != stack[n-1])
			stack = stack[:n-1]
		case bytecode.OpLt:
			n := len(stack)
			stack[n-2] = b2i(stack[n-2] < stack[n-1])
			stack = stack[:n-1]
		case bytecode.OpLe:
			n := len(stack)
			stack[n-2] = b2i(stack[n-2] <= stack[n-1])
			stack = stack[:n-1]
		case bytecode.OpGt:
			n := len(stack)
			stack[n-2] = b2i(stack[n-2] > stack[n-1])
			stack = stack[:n-1]
		case bytecode.OpGe:
			n := len(stack)
			stack[n-2] = b2i(stack[n-2] >= stack[n-1])
			stack = stack[:n-1]
		case bytecode.OpNeg:
			stack[len(stack)-1] = -stack[len(stack)-1]
		case bytecode.OpNot:
			stack[len(stack)-1] = b2i(stack[len(stack)-1] == 0)

		case bytecode.OpJmp:
			pc = in.A
		case bytecode.OpJmpFalse:
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if c == 0 {
				pc = in.A
			}
		case bytecode.OpJmpTrue:
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if c != 0 {
				pc = in.A
			}

		default:
			// Cold op (call/ret/spawn/sync/print): hand the instruction to
			// the generic step, then re-cache the possibly-changed top frame.
			pc--
			f.PC, f.Stack = pc, stack
			v.stepT(p, false)
			if v.Failure != nil || p.Status != StatusReady {
				return
			}
			f = p.top()
			code = f.Fn.Code
			slots = f.Slots
			stack = f.Stack
			pc = f.PC
		}
	}
	f.PC, f.Stack = pc, stack
}

// runSliceLog is the execution-phase loop (§4): runSliceRun plus shared-
// variable READ/WRITE marking, array dirty bits, and the prelog/postlog/
// shared-prelog emitters — everything else about the dispatch is identical,
// which is what keeps the logs byte-identical to the generic loop's.
func (v *VM) runSliceLog(p *Proc) {
	f := p.top()
	code := f.Fn.Code
	slots := f.Slots
	stack := f.Stack
	pc := f.PC

	for q := 0; q < v.Opts.Quantum; q++ {
		v.Steps++
		if v.Steps > v.Opts.MaxSteps {
			f.PC, f.Stack = pc, stack
			v.fail(p, ast.NoStmt, "instruction budget exhausted")
			return
		}
		if pc >= len(code) {
			f.PC, f.Stack = pc, stack
			v.fail(p, ast.NoStmt, "pc out of range in %s", f.Fn.Name)
			return
		}
		in := &code[pc]
		pc++

		switch in.Op {
		case bytecode.OpNop:

		case bytecode.OpConst:
			stack = append(stack, int64(in.A))
		case bytecode.OpPop:
			stack = stack[:len(stack)-1]

		case bytecode.OpLoadLocal:
			stack = append(stack, slots[in.A].Int)
		case bytecode.OpStoreLocal:
			slots[in.A] = Value{Int: stack[len(stack)-1]}
			stack = stack[:len(stack)-1]
		case bytecode.OpLoadGlobal:
			stack = append(stack, v.Globals[in.A].Int)
			if v.shared[in.A] {
				p.reads.Add(in.A)
			}
		case bytecode.OpStoreGlobal:
			v.Globals[in.A] = Value{Int: stack[len(stack)-1]}
			stack = stack[:len(stack)-1]
			if v.shared[in.A] {
				p.writes.Add(in.A)
			}

		case bytecode.OpLoadIndexedL:
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			arr := slots[in.A].Arr
			if i < 0 || i >= int64(len(arr)) {
				f.PC, f.Stack = pc, stack
				v.fail(p, in.Stmt, "array index %d out of range [0,%d)", i, len(arr))
				return
			}
			stack = append(stack, arr[i])
		case bytecode.OpStoreIndexedL:
			n := len(stack)
			val, i := stack[n-1], stack[n-2]
			stack = stack[:n-2]
			arr := slots[in.A].Arr
			if i < 0 || i >= int64(len(arr)) {
				f.PC, f.Stack = pc, stack
				v.fail(p, in.Stmt, "array index %d out of range [0,%d)", i, len(arr))
				return
			}
			arr[i] = val
			if f.arrSnap != nil {
				f.arrSnap[in.A].dirty = true
			}
		case bytecode.OpLoadIndexedG:
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			arr := v.Globals[in.A].Arr
			if i < 0 || i >= int64(len(arr)) {
				f.PC, f.Stack = pc, stack
				v.fail(p, in.Stmt, "array index %d out of range [0,%d)", i, len(arr))
				return
			}
			stack = append(stack, arr[i])
			if v.shared[in.A] {
				p.reads.Add(in.A)
			}
		case bytecode.OpStoreIndexedG:
			n := len(stack)
			val, i := stack[n-1], stack[n-2]
			stack = stack[:n-2]
			arr := v.Globals[in.A].Arr
			if i < 0 || i >= int64(len(arr)) {
				f.PC, f.Stack = pc, stack
				v.fail(p, in.Stmt, "array index %d out of range [0,%d)", i, len(arr))
				return
			}
			arr[i] = val
			if v.shared[in.A] {
				p.writes.Add(in.A)
			}
			v.gDirty[in.A] = true

		case bytecode.OpAdd:
			n := len(stack)
			stack[n-2] += stack[n-1]
			stack = stack[:n-1]
		case bytecode.OpSub:
			n := len(stack)
			stack[n-2] -= stack[n-1]
			stack = stack[:n-1]
		case bytecode.OpMul:
			n := len(stack)
			stack[n-2] *= stack[n-1]
			stack = stack[:n-1]
		case bytecode.OpDiv:
			n := len(stack)
			if stack[n-1] == 0 {
				stack = stack[:n-2]
				f.PC, f.Stack = pc, stack
				v.fail(p, in.Stmt, "division by zero")
				return
			}
			stack[n-2] /= stack[n-1]
			stack = stack[:n-1]
		case bytecode.OpMod:
			n := len(stack)
			if stack[n-1] == 0 {
				stack = stack[:n-2]
				f.PC, f.Stack = pc, stack
				v.fail(p, in.Stmt, "modulo by zero")
				return
			}
			stack[n-2] %= stack[n-1]
			stack = stack[:n-1]
		case bytecode.OpEq:
			n := len(stack)
			stack[n-2] = b2i(stack[n-2] == stack[n-1])
			stack = stack[:n-1]
		case bytecode.OpNe:
			n := len(stack)
			stack[n-2] = b2i(stack[n-2] != stack[n-1])
			stack = stack[:n-1]
		case bytecode.OpLt:
			n := len(stack)
			stack[n-2] = b2i(stack[n-2] < stack[n-1])
			stack = stack[:n-1]
		case bytecode.OpLe:
			n := len(stack)
			stack[n-2] = b2i(stack[n-2] <= stack[n-1])
			stack = stack[:n-1]
		case bytecode.OpGt:
			n := len(stack)
			stack[n-2] = b2i(stack[n-2] > stack[n-1])
			stack = stack[:n-1]
		case bytecode.OpGe:
			n := len(stack)
			stack[n-2] = b2i(stack[n-2] >= stack[n-1])
			stack = stack[:n-1]
		case bytecode.OpNeg:
			stack[len(stack)-1] = -stack[len(stack)-1]
		case bytecode.OpNot:
			stack[len(stack)-1] = b2i(stack[len(stack)-1] == 0)

		case bytecode.OpJmp:
			pc = in.A
		case bytecode.OpJmpFalse:
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if c == 0 {
				pc = in.A
			}
		case bytecode.OpJmpTrue:
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if c != 0 {
				pc = in.A
			}

		case bytecode.OpPrelog:
			v.emitPrelog(p, in.A, in.Stmt)
		case bytecode.OpPostlog:
			// the emitter reads the return value off the operand stack
			f.Stack = stack
			v.emitPostlog(p, in.A, in.B == 1, in.Stmt)
		case bytecode.OpShPrelog:
			v.emitShPrelog(p, f.Fn, in.A)

		default:
			// Cold op (call/ret/spawn/sync/print): hand the instruction to
			// the generic step, then re-cache the possibly-changed top frame.
			pc--
			f.PC, f.Stack = pc, stack
			v.stepT(p, false)
			if v.Failure != nil || p.Status != StatusReady {
				return
			}
			f = p.top()
			code = f.Fn.Code
			slots = f.Slots
			stack = f.Stack
			pc = f.PC
		}
	}
	f.PC, f.Stack = pc, stack
}
