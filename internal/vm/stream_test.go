package vm

import (
	"bytes"
	"testing"

	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/logging"
	"ppd/internal/workloads"
)

// streamLogBytes runs wl under ModeLog with a streaming sink and returns the
// sink's bytes.
func streamLogBytes(t *testing.T, wl *workloads.Workload, cfg eblock.Config, seed int64, quantum int) []byte {
	t.Helper()
	art, err := compile.CompileSource(wl.Name, wl.Src, cfg)
	if err != nil {
		t.Fatalf("compile %s: %v", wl.Name, err)
	}
	var sink bytes.Buffer
	v := New(art.Prog, Options{Mode: ModeLog, Seed: seed, Quantum: quantum, LogSink: &sink})
	if err := v.Run(); err != nil {
		t.Fatalf("run %s: %v", wl.Name, err)
	}
	if v.SinkErr != nil {
		t.Fatalf("sink error: %v", v.SinkErr)
	}
	if err := v.Log.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("Write on a streamed log should error (records were recycled)")
	}
	return sink.Bytes()
}

// TestStreamedLogByteIdentical pins the streaming sink's core contract: the
// bytes written to the sink equal what ProgramLog.Write produces for a
// retained run of the same interleaving — across every standard workload,
// seed/quantum shape, and the sharded workload at several process counts.
func TestStreamedLogByteIdentical(t *testing.T) {
	type streamCase struct {
		name    string
		wl      *workloads.Workload
		cfg     eblock.Config
		seed    int64
		quantum int
	}
	var cases []streamCase
	for _, tc := range goldenCases() {
		cases = append(cases, streamCase{tc.name, tc.wl, tc.cfg, tc.seed, tc.quantum})
	}
	for _, nproc := range []int{1, 2, 8} {
		cases = append(cases, streamCase{
			name: "sharded_nproc" + string(rune('0'+nproc)),
			wl:   workloads.Sharded(nproc, 30), cfg: eblock.Config{}, seed: 7, quantum: 11,
		})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			retained := goldenLogBytes(t, tc.wl, tc.cfg, tc.seed, tc.quantum)
			streamed := streamLogBytes(t, tc.wl, tc.cfg, tc.seed, tc.quantum)
			if !bytes.Equal(retained, streamed) {
				t.Fatalf("streamed bytes differ from retained Write: got %d bytes, want %d bytes (first diff at %d)",
					len(streamed), len(retained), firstDiff(streamed, retained))
			}
			// The streamed artifact must load back as a normal log.
			pl, err := logging.Read(bytes.NewReader(streamed))
			if err != nil {
				t.Fatalf("re-reading streamed log: %v", err)
			}
			var rt bytes.Buffer
			if err := pl.Write(&rt); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rt.Bytes(), streamed) {
				t.Fatal("streamed log did not round-trip through Read+Write")
			}
		})
	}
}

// TestStreamedStats checks that a streamed run still reports the same Stats
// (per-kind record counts and encoded bytes) as a retained run: the book
// accumulates stats at Append time instead of scanning retained records.
func TestStreamedStats(t *testing.T) {
	tc := goldenCases()[2] // prodcons: sync records, prelogs, exits
	art, err := compile.CompileSource(tc.wl.Name, tc.wl.Src, tc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(sink *bytes.Buffer) *VM {
		opts := Options{Mode: ModeLog, Seed: tc.seed, Quantum: tc.quantum}
		if sink != nil {
			opts.LogSink = sink
		}
		v := New(art.Prog, opts)
		if err := v.Run(); err != nil {
			t.Fatal(err)
		}
		return v
	}
	retained := run(nil).Log.Stats()
	streamed := run(&bytes.Buffer{}).Log.Stats()
	if retained != streamed {
		t.Fatalf("streamed stats %+v != retained stats %+v", streamed, retained)
	}
}
