package vm

import "ppd/internal/bytecode"

// Superinstruction handlers. Each executes a whole fused sequence
// (bytecode.Fuse) in one dispatch; the driver has already charged the
// sequence's width against the step counter and the quantum and advanced
// the pc past it, so a handler only touches data (and, for the
// compare-and-branch shapes, rewrites the pc on a taken branch). Every
// shape is infallible by construction — Div/Mod appear only with a
// non-zero constant operand — so handlers never write back state or set
// dispatch.sig.

// superApply evaluates x ∘ y for the fused binop/compare set.
func superApply(op bytecode.Op, x, y int64) int64 {
	switch op {
	case bytecode.OpAdd:
		return x + y
	case bytecode.OpSub:
		return x - y
	case bytecode.OpMul:
		return x * y
	case bytecode.OpDiv:
		return x / y
	case bytecode.OpMod:
		return x % y
	case bytecode.OpEq:
		return b2i(x == y)
	case bytecode.OpNe:
		return b2i(x != y)
	case bytecode.OpLt:
		return b2i(x < y)
	case bytecode.OpLe:
		return b2i(x <= y)
	case bytecode.OpGt:
		return b2i(x > y)
	case bytecode.OpGe:
		return b2i(x >= y)
	}
	return 0
}

// superCmp evaluates the compare shapes' predicate directly as a bool.
func superCmp(op bytecode.Op, x, y int64) bool {
	switch op {
	case bytecode.OpEq:
		return x == y
	case bytecode.OpNe:
		return x != y
	case bytecode.OpLt:
		return x < y
	case bytecode.OpLe:
		return x <= y
	case bytecode.OpGt:
		return x > y
	case bytecode.OpGe:
		return x >= y
	}
	return false
}

// sNone is never dispatched (the driver skips SuperNone entries); it fills
// table slot 0.
func sNone(_ *dispatch, _ *bytecode.SuperInstr) {}

func sLLBinS(d *dispatch, s *bytecode.SuperInstr) {
	d.slots[s.C] = Value{Int: superApply(s.Bin, d.slots[s.A].Int, d.slots[s.B].Int)}
}

func sLCBinS(d *dispatch, s *bytecode.SuperInstr) {
	d.slots[s.C] = Value{Int: superApply(s.Bin, d.slots[s.A].Int, s.K)}
}

func sLLBin(d *dispatch, s *bytecode.SuperInstr) {
	d.stack = append(d.stack, superApply(s.Bin, d.slots[s.A].Int, d.slots[s.B].Int))
}

func sLCBin(d *dispatch, s *bytecode.SuperInstr) {
	d.stack = append(d.stack, superApply(s.Bin, d.slots[s.A].Int, s.K))
}

func sLGBinRun(d *dispatch, s *bytecode.SuperInstr) {
	d.stack = append(d.stack, superApply(s.Bin, d.slots[s.A].Int, d.v.Globals[s.B].Int))
}

func sLGBinLog(d *dispatch, s *bytecode.SuperInstr) {
	d.stack = append(d.stack, superApply(s.Bin, d.slots[s.A].Int, d.v.Globals[s.B].Int))
	if d.v.shared[s.B] {
		d.p.reads.Add(s.B)
	}
}

func sLBin(d *dispatch, s *bytecode.SuperInstr) {
	n := len(d.stack) - 1
	d.stack[n] = superApply(s.Bin, d.stack[n], d.slots[s.A].Int)
}

func sCBin(d *dispatch, s *bytecode.SuperInstr) {
	n := len(d.stack) - 1
	d.stack[n] = superApply(s.Bin, d.stack[n], s.K)
}

func sConstStoreL(d *dispatch, s *bytecode.SuperInstr) {
	d.slots[s.A] = Value{Int: s.K}
}

func sLLCmpJf(d *dispatch, s *bytecode.SuperInstr) {
	if !superCmp(s.Bin, d.slots[s.A].Int, d.slots[s.B].Int) {
		d.pc = s.T
	}
}

func sLCCmpJf(d *dispatch, s *bytecode.SuperInstr) {
	if !superCmp(s.Bin, d.slots[s.A].Int, s.K) {
		d.pc = s.T
	}
}

func sLGCmpJfRun(d *dispatch, s *bytecode.SuperInstr) {
	if !superCmp(s.Bin, d.slots[s.A].Int, d.v.Globals[s.B].Int) {
		d.pc = s.T
	}
}

func sLGCmpJfLog(d *dispatch, s *bytecode.SuperInstr) {
	if !superCmp(s.Bin, d.slots[s.A].Int, d.v.Globals[s.B].Int) {
		d.pc = s.T
	}
	if d.v.shared[s.B] {
		d.p.reads.Add(s.B)
	}
}

func sCmpJf(d *dispatch, s *bytecode.SuperInstr) {
	n := len(d.stack)
	x, y := d.stack[n-2], d.stack[n-1]
	d.stack = d.stack[:n-2]
	if !superCmp(s.Bin, x, y) {
		d.pc = s.T
	}
}
