package vm

import "ppd/internal/bytecode"

// Superinstruction handlers. Each executes a whole fused sequence
// (bytecode.Fuse) in one dispatch; the driver has already charged the
// sequence's width against the step counter and the quantum and advanced
// the pc past it, so a handler only touches data (and, for the
// compare-and-branch shapes, rewrites the pc on a taken branch). The
// original shapes are infallible by construction — Div/Mod appear only
// with a non-zero constant operand — so their handlers never write back
// state or set dispatch.sig.
//
// The certificate-gated shapes (bytecode.FuseCert) carry trapping
// constituents that the abstract interpreter proved safe. Their handlers
// keep the runtime check as defense in depth: on the provably-impossible
// failure they reconstruct the exact single-op machine state — the pc
// after the failing instruction, the step count as of that instruction,
// the operand stack with the constituents' pushes/pops replayed — and
// fail through the same v.fail path, so even a wrong certificate (say, a
// corrupt cache entry) reports byte-identically to unfused execution.

// superApply evaluates x ∘ y for the fused binop/compare set.
func superApply(op bytecode.Op, x, y int64) int64 {
	switch op {
	case bytecode.OpAdd:
		return x + y
	case bytecode.OpSub:
		return x - y
	case bytecode.OpMul:
		return x * y
	case bytecode.OpDiv:
		return x / y
	case bytecode.OpMod:
		return x % y
	case bytecode.OpEq:
		return b2i(x == y)
	case bytecode.OpNe:
		return b2i(x != y)
	case bytecode.OpLt:
		return b2i(x < y)
	case bytecode.OpLe:
		return b2i(x <= y)
	case bytecode.OpGt:
		return b2i(x > y)
	case bytecode.OpGe:
		return b2i(x >= y)
	}
	return 0
}

// superCmp evaluates the compare shapes' predicate directly as a bool.
func superCmp(op bytecode.Op, x, y int64) bool {
	switch op {
	case bytecode.OpEq:
		return x == y
	case bytecode.OpNe:
		return x != y
	case bytecode.OpLt:
		return x < y
	case bytecode.OpLe:
		return x <= y
	case bytecode.OpGt:
		return x > y
	case bytecode.OpGe:
		return x >= y
	}
	return false
}

// sNone is never dispatched (the driver skips SuperNone entries); it fills
// table slot 0.
func sNone(_ *dispatch, _ *bytecode.SuperInstr) {}

func sLLBinS(d *dispatch, s *bytecode.SuperInstr) {
	d.slots[s.C] = Value{Int: superApply(s.Bin, d.slots[s.A].Int, d.slots[s.B].Int)}
}

func sLCBinS(d *dispatch, s *bytecode.SuperInstr) {
	d.slots[s.C] = Value{Int: superApply(s.Bin, d.slots[s.A].Int, s.K)}
}

func sLLBin(d *dispatch, s *bytecode.SuperInstr) {
	d.stack = append(d.stack, superApply(s.Bin, d.slots[s.A].Int, d.slots[s.B].Int))
}

func sLCBin(d *dispatch, s *bytecode.SuperInstr) {
	d.stack = append(d.stack, superApply(s.Bin, d.slots[s.A].Int, s.K))
}

func sLGBinRun(d *dispatch, s *bytecode.SuperInstr) {
	d.stack = append(d.stack, superApply(s.Bin, d.slots[s.A].Int, d.v.Globals[s.B].Int))
}

func sLGBinLog(d *dispatch, s *bytecode.SuperInstr) {
	d.stack = append(d.stack, superApply(s.Bin, d.slots[s.A].Int, d.v.Globals[s.B].Int))
	if d.v.shared[s.B] {
		d.p.reads.Add(s.B)
	}
}

func sLBin(d *dispatch, s *bytecode.SuperInstr) {
	n := len(d.stack) - 1
	d.stack[n] = superApply(s.Bin, d.stack[n], d.slots[s.A].Int)
}

func sCBin(d *dispatch, s *bytecode.SuperInstr) {
	n := len(d.stack) - 1
	d.stack[n] = superApply(s.Bin, d.stack[n], s.K)
}

func sConstStoreL(d *dispatch, s *bytecode.SuperInstr) {
	d.slots[s.A] = Value{Int: s.K}
}

func sLLCmpJf(d *dispatch, s *bytecode.SuperInstr) {
	if !superCmp(s.Bin, d.slots[s.A].Int, d.slots[s.B].Int) {
		d.pc = s.T
	}
}

func sLCCmpJf(d *dispatch, s *bytecode.SuperInstr) {
	if !superCmp(s.Bin, d.slots[s.A].Int, s.K) {
		d.pc = s.T
	}
}

func sLGCmpJfRun(d *dispatch, s *bytecode.SuperInstr) {
	if !superCmp(s.Bin, d.slots[s.A].Int, d.v.Globals[s.B].Int) {
		d.pc = s.T
	}
}

func sLGCmpJfLog(d *dispatch, s *bytecode.SuperInstr) {
	if !superCmp(s.Bin, d.slots[s.A].Int, d.v.Globals[s.B].Int) {
		d.pc = s.T
	}
	if d.v.shared[s.B] {
		d.p.reads.Add(s.B)
	}
}

func sCmpJf(d *dispatch, s *bytecode.SuperInstr) {
	n := len(d.stack)
	x, y := d.stack[n-2], d.stack[n-1]
	d.stack = d.stack[:n-2]
	if !superCmp(s.Bin, x, y) {
		d.pc = s.T
	}
}

// ---- certificate-gated shapes ----

func divZeroMsg(op bytecode.Op) string {
	if op == bytecode.OpMod {
		return "modulo by zero"
	}
	return "division by zero"
}

// superDivFail reports a zero divisor from a fused window whose div/mod
// is the instruction at divPC: the single-op path would have failed with
// the pc advanced past it and only the steps up to it charged.
func (d *dispatch) superDivFail(bin bytecode.Op, divPC int) {
	d.v.Steps -= int64(d.pc - divPC - 1) // un-charge the instrs after the div
	d.pc = divPC + 1
	d.f.PC, d.f.Stack = d.pc, d.stack
	d.v.fail(d.p, d.code[divPC].Stmt, "%s", divZeroMsg(bin))
	d.sig = sigExit
}

// superIndexFail mirrors dispatch.indexFail for a fused window whose
// indexed op is the window's last instruction (all indexed shapes).
func (d *dispatch) superIndexFail(i int64, n int) {
	d.f.PC, d.f.Stack = d.pc, d.stack
	d.v.fail(d.p, d.code[d.pc-1].Stmt, "array index %d out of range [0,%d)", i, n)
	d.sig = sigExit
}

func sLLDivS(d *dispatch, s *bytecode.SuperInstr) {
	y := d.slots[s.B].Int
	if y == 0 {
		d.superDivFail(s.Bin, d.pc-2) // div is the 3rd of 4 instructions
		return
	}
	d.slots[s.C] = Value{Int: superApply(s.Bin, d.slots[s.A].Int, y)}
}

func sLLDiv(d *dispatch, s *bytecode.SuperInstr) {
	y := d.slots[s.B].Int
	if y == 0 {
		d.superDivFail(s.Bin, d.pc-1)
		return
	}
	d.stack = append(d.stack, superApply(s.Bin, d.slots[s.A].Int, y))
}

func sLGDivRun(d *dispatch, s *bytecode.SuperInstr) {
	y := d.v.Globals[s.B].Int
	if y == 0 {
		d.superDivFail(s.Bin, d.pc-1)
		return
	}
	d.stack = append(d.stack, superApply(s.Bin, d.slots[s.A].Int, y))
}

func sLGDivLog(d *dispatch, s *bytecode.SuperInstr) {
	// The global load completes before the div can fail: mark it first.
	if d.v.shared[s.B] {
		d.p.reads.Add(s.B)
	}
	sLGDivRun(d, s)
}

func sLDiv(d *dispatch, s *bytecode.SuperInstr) {
	n := len(d.stack) - 1
	y := d.slots[s.A].Int
	if y == 0 {
		d.stack = d.stack[:n] // single-op div pops both operands
		d.superDivFail(s.Bin, d.pc-1)
		return
	}
	d.stack[n] = superApply(s.Bin, d.stack[n], y)
}

func sIdxLoadL(d *dispatch, s *bytecode.SuperInstr) {
	i := d.slots[s.B].Int
	arr := d.slots[s.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.superIndexFail(i, len(arr))
		return
	}
	d.stack = append(d.stack, arr[i])
}

func sIdxLoadGRun(d *dispatch, s *bytecode.SuperInstr) {
	i := d.slots[s.B].Int
	arr := d.v.Globals[s.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.superIndexFail(i, len(arr))
		return
	}
	d.stack = append(d.stack, arr[i])
}

func sIdxLoadGLog(d *dispatch, s *bytecode.SuperInstr) {
	i := d.slots[s.B].Int
	arr := d.v.Globals[s.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.superIndexFail(i, len(arr))
		return
	}
	d.stack = append(d.stack, arr[i])
	if d.v.shared[s.A] {
		d.p.reads.Add(s.A)
	}
}

func sIdxStoreLRun(d *dispatch, s *bytecode.SuperInstr) {
	i := d.slots[s.B].Int
	arr := d.slots[s.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.superIndexFail(i, len(arr))
		return
	}
	arr[i] = d.slots[s.C].Int
}

func sIdxStoreLLog(d *dispatch, s *bytecode.SuperInstr) {
	i := d.slots[s.B].Int
	arr := d.slots[s.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.superIndexFail(i, len(arr))
		return
	}
	arr[i] = d.slots[s.C].Int
	if d.f.arrSnap != nil {
		d.f.arrSnap[s.A].dirty = true
	}
}

func sIdxStoreGRun(d *dispatch, s *bytecode.SuperInstr) {
	i := d.slots[s.B].Int
	arr := d.v.Globals[s.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.superIndexFail(i, len(arr))
		return
	}
	arr[i] = d.slots[s.C].Int
}

func sIdxStoreGLog(d *dispatch, s *bytecode.SuperInstr) {
	i := d.slots[s.B].Int
	arr := d.v.Globals[s.A].Arr
	if i < 0 || i >= int64(len(arr)) {
		d.superIndexFail(i, len(arr))
		return
	}
	arr[i] = d.slots[s.C].Int
	if d.v.shared[s.A] {
		d.p.writes.Add(s.A)
	}
	d.v.gDirty[s.A] = true
}
