package vm

import (
	"ppd/internal/bytecode"
	"ppd/internal/logging"
	"ppd/internal/trace"
)

// Synchronization semantics (§6.2):
//
//   - P blocks while the semaphore count is zero; a V with waiters hands the
//     count directly to the first waiter (edge V→unblocked-P). A V that
//     raises the count 0→1 is remembered; if the next operation on the same
//     semaphore is a P by a different process, that V→P pair gets an edge.
//   - send blocks until the message is accepted: immediately into a buffer
//     slot when capacity allows, otherwise until a receiver takes it. For
//     unbuffered channels the receiver's take also unblocks the sender
//     (edges send→recv and recv→unblock, the paper's n3→n4 and n4→n5).
//   - recv blocks until a message is available.
//
// Every completed operation appends a RecSync record carrying the event's
// global sequence number, its causal source (FromGsn), and the terminated
// internal edge's shared READ/WRITE sets.

func (v *VM) traceSync(p *Proc, in *bytecode.Instr, op logging.SyncOp, obj int) {
	if v.Opts.Mode == ModeFullTrace {
		p.Tbuf.Append(trace.Event{Kind: trace.EvSync, Stmt: in.Stmt, Op: op, Obj: obj})
	}
}

func (v *VM) execSemP(p *Proc, in *bytecode.Instr) {
	if v.Opts.Mode == ModeEmulate {
		if _, err := v.hooks.OnSync(p, logging.OpP, in.A); err != nil {
			v.fail(p, in.Stmt, "emulation: %v", err)
			return
		}
		if p.Tbuf != nil {
			p.Tbuf.Append(trace.Event{Kind: trace.EvSync, Stmt: in.Stmt, Op: logging.OpP, Obj: in.A})
		}
		return
	}
	s := v.sems[in.A]
	if s == nil {
		v.fail(p, in.Stmt, "P on non-semaphore global %d", in.A)
		return
	}
	if s.count > 0 {
		s.count--
		gsn := v.nextGsn()
		var from uint64
		// §6.2.1 second rule: pair with the remembered 0→1 V when this P is
		// the next operation on the semaphore and is by another process.
		if s.pendingVGsn != 0 && s.pendingVPid != p.PID {
			from = s.pendingVGsn
		}
		s.pendingVGsn, s.pendingVPid = 0, -1
		v.logSyncEvent(p, logging.OpP, in.A, in.Stmt, gsn, from, s.count)
		v.traceSync(p, in, logging.OpP, in.A)
		return
	}
	// Block. The PC has already advanced past the P; completion happens in
	// execSemV when a V hands the semaphore over.
	s.pendingVGsn, s.pendingVPid = 0, -1 // a blocked P is "the next operation"
	p.Status = StatusBlockedSem
	p.waitObj = in.A
	p.blockStmt = in.Stmt
	s.waiters = append(s.waiters, p)
}

func (v *VM) execSemV(p *Proc, in *bytecode.Instr) {
	if v.Opts.Mode == ModeEmulate {
		if _, err := v.hooks.OnSync(p, logging.OpV, in.A); err != nil {
			v.fail(p, in.Stmt, "emulation: %v", err)
			return
		}
		if p.Tbuf != nil {
			p.Tbuf.Append(trace.Event{Kind: trace.EvSync, Stmt: in.Stmt, Op: logging.OpV, Obj: in.A})
		}
		return
	}
	s := v.sems[in.A]
	if s == nil {
		v.fail(p, in.Stmt, "V on non-semaphore global %d", in.A)
		return
	}
	gsn := v.nextGsn()
	v.logSyncEvent(p, logging.OpV, in.A, in.Stmt, gsn, 0, s.count)
	v.traceSync(p, in, logging.OpV, in.A)

	if len(s.waiters) > 0 {
		// Direct handoff: first waiter's P completes now, with an edge from
		// this V (§6.2.1 first rule).
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.Status = StatusReady
		v.ready = append(v.ready, w)
		wGsn := v.nextGsn()
		v.logSyncEvent(w, logging.OpP, in.A, w.blockStmt, wGsn, gsn, s.count)
		if v.Opts.Mode == ModeFullTrace {
			w.Tbuf.Append(trace.Event{Kind: trace.EvSync, Stmt: w.blockStmt, Op: logging.OpP, Obj: in.A})
		}
		return
	}
	s.count++
	if s.count == 1 {
		s.pendingVGsn, s.pendingVPid = gsn, p.PID
	} else {
		s.pendingVGsn, s.pendingVPid = 0, -1
	}
}

func (v *VM) execSend(p *Proc, in *bytecode.Instr, val int64) {
	if v.Opts.Mode == ModeEmulate {
		if _, err := v.hooks.OnSync(p, logging.OpSend, in.A); err != nil {
			v.fail(p, in.Stmt, "emulation: %v", err)
			return
		}
		if p.Tbuf != nil {
			p.Tbuf.Append(trace.Event{Kind: trace.EvSync, Stmt: in.Stmt, Op: logging.OpSend, Obj: in.A})
		}
		return
	}
	ch := v.chans[in.A]
	if ch == nil {
		v.fail(p, in.Stmt, "send on non-channel global %d", in.A)
		return
	}
	gsn := v.nextGsn()
	v.logSyncEvent(p, logging.OpSend, in.A, in.Stmt, gsn, 0, val)
	v.traceSync(p, in, logging.OpSend, in.A)

	if len(ch.recvers) > 0 {
		// A receiver is waiting: deliver directly (send→recv edge), and for
		// unbuffered channels also record the sender's unblock (recv→unblock).
		w := ch.recvers[0]
		ch.recvers = ch.recvers[1:]
		w.Status = StatusReady
		v.ready = append(v.ready, w)
		w.top().Stack = append(w.top().Stack, val)
		rGsn := v.nextGsn()
		v.logSyncEvent(w, logging.OpRecv, in.A, w.blockStmt, rGsn, gsn, val)
		if v.Opts.Mode == ModeFullTrace {
			w.Tbuf.Append(trace.Event{Kind: trace.EvSync, Stmt: w.blockStmt, Op: logging.OpRecv, Obj: in.A})
		}
		if ch.cap == 0 {
			uGsn := v.nextGsn()
			v.logSyncEvent(p, logging.OpUnblock, in.A, in.Stmt, uGsn, rGsn, 0)
		}
		return
	}
	if len(ch.buf) < ch.cap {
		ch.buf = append(ch.buf, bufferedMsg{val: val, gsn: gsn})
		return
	}
	// No room: block until a receiver takes the message.
	p.Status = StatusBlockedSend
	p.waitObj = in.A
	p.sendVal = val
	p.sendGsn = gsn
	p.blockStmt = in.Stmt
	ch.senders = append(ch.senders, p)
}

func (v *VM) execRecv(p *Proc, in *bytecode.Instr) {
	f := p.top()
	if v.Opts.Mode == ModeEmulate {
		val, err := v.hooks.OnSync(p, logging.OpRecv, in.A)
		if err != nil {
			v.fail(p, in.Stmt, "emulation: %v", err)
			return
		}
		f.Stack = append(f.Stack, val)
		if p.Tbuf != nil {
			p.Tbuf.Append(trace.Event{Kind: trace.EvSync, Stmt: in.Stmt, Op: logging.OpRecv, Obj: in.A})
		}
		return
	}
	ch := v.chans[in.A]
	if ch == nil {
		v.fail(p, in.Stmt, "recv on non-channel global %d", in.A)
		return
	}
	if len(ch.buf) > 0 {
		m := ch.buf[0]
		ch.buf = ch.buf[1:]
		f.Stack = append(f.Stack, m.val)
		gsn := v.nextGsn()
		v.logSyncEvent(p, logging.OpRecv, in.A, in.Stmt, gsn, m.gsn, m.val)
		v.traceSync(p, in, logging.OpRecv, in.A)
		// A blocked sender can now place its message in the freed slot.
		if len(ch.senders) > 0 {
			s := ch.senders[0]
			ch.senders = ch.senders[1:]
			ch.buf = append(ch.buf, bufferedMsg{val: s.sendVal, gsn: s.sendGsn})
			s.Status = StatusReady
			v.ready = append(v.ready, s)
			uGsn := v.nextGsn()
			v.logSyncEvent(s, logging.OpUnblock, in.A, s.blockStmt, uGsn, gsn, 0)
		}
		return
	}
	if len(ch.senders) > 0 {
		// Unbuffered (or drained) channel with a blocked sender: take its
		// message, unblocking it (send→recv and recv→unblock edges).
		s := ch.senders[0]
		ch.senders = ch.senders[1:]
		f.Stack = append(f.Stack, s.sendVal)
		gsn := v.nextGsn()
		v.logSyncEvent(p, logging.OpRecv, in.A, in.Stmt, gsn, s.sendGsn, s.sendVal)
		v.traceSync(p, in, logging.OpRecv, in.A)
		s.Status = StatusReady
		v.ready = append(v.ready, s)
		uGsn := v.nextGsn()
		v.logSyncEvent(s, logging.OpUnblock, in.A, s.blockStmt, uGsn, gsn, 0)
		return
	}
	// Nothing available: block.
	p.Status = StatusBlockedRecv
	p.waitObj = in.A
	p.blockStmt = in.Stmt
	ch.recvers = append(ch.recvers, p)
}
