// Package vm executes PPD bytecode on a simulated shared-memory
// multiprocessor: multiple processes over one global address space, with
// semaphores, blocking message channels, and spawn, driven by a
// deterministic seedable preemptive scheduler.
//
// The scheduler is the reproduction's substitute for real SMMP hardware
// (see DESIGN.md): races and log contents depend on interleaving, and a
// seeded scheduler lets tests and benchmarks explore interleavings
// reproducibly — something the paper's Sequent could not do.
//
// One bytecode body serves three execution modes:
//
//	ModeRun       uninstrumented reference execution (overhead baseline)
//	ModeLog       the paper's execution phase: prelogs, postlogs, shared
//	              prelogs, and sync records are appended to per-process logs
//	ModeFullTrace the strawman the paper argues against: every read, write,
//	              predicate and call is traced during execution
//
// Emulation-mode execution (re-running a single e-block from its prelog,
// §5.1–§5.3) is layered on top by package emulation via the hooks exposed
// in exec.go.
package vm

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"ppd/internal/ast"
	"ppd/internal/bitset"
	"ppd/internal/bytecode"
	"ppd/internal/logging"
	"ppd/internal/obs"
	"ppd/internal/trace"
)

// Mode selects the VM's instrumentation behavior.
type Mode int

// Execution modes.
const (
	ModeRun Mode = iota
	ModeLog
	ModeFullTrace
)

func (m Mode) String() string {
	switch m {
	case ModeRun:
		return "run"
	case ModeLog:
		return "log"
	case ModeFullTrace:
		return "fulltrace"
	}
	return "?"
}

// Options configures an execution.
type Options struct {
	Mode     Mode
	Seed     int64     // scheduler seed; 0 = strict round-robin
	Quantum  int       // max instructions per scheduling slice (default 40)
	MaxSteps int64     // global instruction budget (default 200M)
	Output   io.Writer // program print output; nil discards

	// BreakAt halts the whole execution (all processes, §5.7's timely halt
	// / the authors' companion breakpoint mechanism) the first time any
	// process is about to execute the given statement. The logs flushed at
	// the halt make the stopped state debuggable like any other.
	BreakAt ast.StmtID

	// LogSink, when non-nil under ModeLog, streams the log: every record
	// is encoded through the binary codec as it is produced and recycled,
	// so a long run holds buffered encoded bytes instead of record
	// structures. The sink receives, at run end, exactly the bytes
	// ProgramLog.Write would have produced for the same records. The
	// in-memory (retained) log remains the default; a streamed run's log
	// must be re-read with logging.Read before the debugging phase can use
	// it.
	LogSink io.Writer

	// Obs receives execution-phase metrics: the "exec.run" phase scope and
	// the exec.steps / exec.ctxswitches / exec.procs counters, folded in
	// once when the run ends. nil disables observation; the interpreter's
	// instruction loop is identical either way (the VM always counts into
	// plain fields and never touches the sink per instruction).
	Obs *obs.Sink

	// OpProfile, when non-nil, collects the per-opcode / per-pair /
	// per-superinstruction dispatch histogram that feeds the profile-guided
	// fusion table (`ppd stats -ops`). Profiling runs through a separate
	// copy of the dispatch driver, so a nil OpProfile costs nothing. Only
	// the table-driven paths count (ModeRun/ModeLog without a breakpoint);
	// the profile must not be shared between concurrently running VMs.
	OpProfile *obs.OpStats

	// Ctx, when non-nil, makes the run cancellable: the scheduler checks
	// Ctx.Done() once per scheduling slice (never per instruction — the
	// dispatch hot path is unchanged) and a cancelled run stops between
	// slices, returning Ctx.Err() as an infrastructure error: no Failure
	// or Deadlock is recorded, and the log holds everything appended up
	// to the halt. Even a cancelled run flushes the halted processes' exit
	// records, so its (partial) log is well-formed for the debugging
	// phase. nil disables the check entirely.
	Ctx context.Context

	// Tap, when non-nil under ModeLog, observes every log record at append
	// time in generation order — the hook the online analysis pipeline
	// (internal/stream) tees off of. The tap runs on the VM goroutine
	// before the record is retained or recycled; it must copy what it
	// keeps (see logging.Tap) and should hand work off quickly. Composes
	// with LogSink: the tap fires first, then the record is encoded and
	// recycled.
	Tap logging.Tap

	// EmuGeneric forces ModeEmulate through the generic stepT loop instead
	// of the dispatch table — the byte-identity oracle the equivalence
	// suite (TestEmuDispatchByteIdentical, FuzzEmuEquivalence) pins the
	// fast path against. No effect in other modes.
	EmuGeneric bool
}

// Status is a process's scheduling state.
type Status int

// Process states.
const (
	StatusReady Status = iota
	StatusBlockedSem
	StatusBlockedSend
	StatusBlockedRecv
	StatusDone
	StatusFailed
)

func (s Status) String() string {
	switch s {
	case StatusReady:
		return "ready"
	case StatusBlockedSem:
		return "blocked-P"
	case StatusBlockedSend:
		return "blocked-send"
	case StatusBlockedRecv:
		return "blocked-recv"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	}
	return "?"
}

// Value is a runtime value; it shares logging's representation so snapshots
// need no conversion.
type Value = logging.Value

// RuntimeError describes a failure (the paper's externally visible symptom
// that starts a debugging session).
type RuntimeError struct {
	PID  int
	Stmt ast.StmtID
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("process %d at s%d: %s", e.PID, e.Stmt, e.Msg)
}

// Frame is one activation record.
type Frame struct {
	Fn    *bytecode.Func
	PC    int
	Slots []Value
	Stack []int64

	// arrSnap is the frame's copy-on-write snapshot cache for local
	// arrays, indexed by slot (ModeLog only, and only for functions that
	// declare arrays). A prelog/postlog reuses the cached snapshot until
	// an indexed store dirties the slot, so an unwritten array is never
	// deep-cloned twice.
	arrSnap []arrSnap
}

// arrSnap caches one array's last logged snapshot with its dirty bit.
type arrSnap struct {
	dirty bool
	arr   []int64
}

// Proc is one simulated process.
type Proc struct {
	PID    int
	Frames []*Frame
	Status Status

	// Blocking state.
	waitObj   int   // GlobalID of the sem/chan being waited on
	sendVal   int64 // value held while blocked on send
	sendGsn   uint64
	blockStmt ast.StmtID // statement of the operation that blocked

	// Logging state.
	Book *logging.Book
	Tbuf *trace.Buffer

	// Shared-variable access sets of the current internal edge (§6.3).
	reads, writes *bitset.Set

	lastStmt ast.StmtID // trace statement-boundary detection

	// spare recycles popped frames: a call pops one back instead of
	// allocating a fresh Frame + Slots + Stack (call-heavy programs spend
	// a large share of their time there).
	spare []*Frame

	Err *RuntimeError
}

// maxSpareFrames bounds the per-process frame freelist.
const maxSpareFrames = 8

func (p *Proc) top() *Frame { return p.Frames[len(p.Frames)-1] }

type semaphore struct {
	count   int64
	waiters []*Proc
	// pendingV implements §6.2.1's second pairing rule: set when a V takes
	// the count 0→1 with no waiter; consumed by the next operation on the
	// same semaphore.
	pendingVGsn uint64
	pendingVPid int
}

type bufferedMsg struct {
	val int64
	gsn uint64
}

type channel struct {
	cap     int
	buf     []bufferedMsg
	senders []*Proc // blocked senders, FIFO
	recvers []*Proc // blocked receivers, FIFO
}

// VM is one execution instance.
type VM struct {
	Prog *bytecode.Program
	Opts Options

	Globals []Value
	sems    []*semaphore
	chans   []*channel

	Procs []*Proc
	ready []*Proc // scheduling queue (round-robin rotation)

	rng   *rand.Rand
	gsn   uint64
	Steps int64

	// CtxSwitches counts scheduling decisions that moved execution to a
	// different process — one increment per slice, not per instruction.
	CtxSwitches int64
	lastSched   *Proc

	Log   *logging.ProgramLog
	Trace *trace.Program

	Failure  *RuntimeError
	Deadlock bool
	// BreakHit reports that execution halted at Options.BreakAt.
	BreakHit bool

	// SinkErr is a failure flushing Options.LogSink at run end; it is kept
	// separate from the run error so a program failure (the interesting
	// outcome) is never masked by a broken sink.
	SinkErr error

	numGlobals int

	// sliceKind is the interpreter specialization picked once at New (see
	// loops.go): the per-instruction mode/break/trace predicates are
	// decided per scheduling slice, not per step.
	sliceKind sliceKind

	// ops/sups are the mode's dispatch tables (dispatch.go), resolved once
	// at New; disp is the reusable dispatcher state (no per-slice
	// allocation); prof mirrors Opts.OpProfile for the profiled driver.
	ops  *opTable
	sups *superTable
	disp dispatch
	prof *obs.OpStats

	// shared mirrors Prog.Globals[i].Shared as a dense bool slice so the
	// ModeLog hot loop's read/write marking is one index, not a struct
	// field chase (ModeLog only).
	shared []bool

	// gSnap/gDirty implement copy-on-write global array snapshots
	// (ModeLog only): a prelog reuses gSnap[gid] until an indexed store
	// sets gDirty[gid], so unwritten arrays are never re-cloned.
	gSnap  [][]int64
	gDirty []bool

	// argScratch is the reusable call-argument buffer for modes that do
	// not retain argument slices (everything except full trace and
	// emulation, whose events/hooks may hold onto them).
	argScratch []int64

	// Emulation support (ModeEmulate).
	hooks   Hooks
	emuStop bool

	// emuCold counts ModeEmulate instructions dispatched through the
	// generic stepT oracle (dEmuCold and the EmuGeneric loop); the
	// remainder of Steps went through the emu fast tables. Feeds the
	// debug.emu.dispatch.* counters via EmuDispatchStats.
	emuCold int64

	// emuProc caches the single emulation process (and its root frame)
	// across ResetEmu cycles for the pooled replay context.
	emuProc *Proc
}

// New prepares an execution of prog.
func New(prog *bytecode.Program, opts Options) *VM {
	if opts.Quantum <= 0 {
		opts.Quantum = 40
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 200_000_000
	}
	v := &VM{
		Prog:       prog,
		Opts:       opts,
		numGlobals: len(prog.Globals),
	}
	v.Globals = make([]Value, len(prog.Globals))
	// ModeEmulate runs a single process with no scheduler and no real
	// synchronization (sync ops replay from the log before touching
	// sems/chans), so those structures are never allocated — the pooled
	// replay context depends on emulation VMs being this lean.
	emu := opts.Mode == ModeEmulate
	if !emu {
		v.rng = rand.New(rand.NewSource(opts.Seed))
		v.sems = make([]*semaphore, len(prog.Globals))
		v.chans = make([]*channel, len(prog.Globals))
	}
	for i, g := range prog.Globals {
		switch g.Kind {
		case bytecode.GlobalVar:
			if g.IsArray {
				v.Globals[i] = Value{Arr: make([]int64, g.Len)}
			} else if g.HasInit {
				v.Globals[i] = Value{Int: g.Init}
			}
		case bytecode.GlobalSem:
			if !emu {
				v.sems[i] = &semaphore{count: g.Init}
			}
		case bytecode.GlobalChan:
			if !emu {
				v.chans[i] = &channel{cap: g.Len}
			}
		}
	}
	if opts.Mode == ModeLog {
		v.Log = logging.NewProgramLog()
		if opts.LogSink != nil {
			v.Log.SetStream(opts.LogSink)
		}
		if opts.Tap != nil {
			v.Log.SetTap(opts.Tap)
		}
		v.shared = make([]bool, len(prog.Globals))
		for i, g := range prog.Globals {
			v.shared[i] = g.Shared
		}
		v.gSnap = make([][]int64, len(prog.Globals))
		v.gDirty = make([]bool, len(prog.Globals))
	}
	if opts.Mode == ModeFullTrace {
		v.Trace = &trace.Program{}
	}
	v.sliceKind = pickSliceKind(v.Opts)
	switch v.sliceKind {
	case sliceRun:
		tablesOnce.Do(buildDispatchTables)
		v.ops, v.sups = &runOps, &runSups
		v.prof = opts.OpProfile
	case sliceLog:
		tablesOnce.Do(buildDispatchTables)
		v.ops, v.sups = &logOps, &logSups
		v.prof = opts.OpProfile
	}
	return v
}

// nextGsn allocates a global sequence number for a sync event.
func (v *VM) nextGsn() uint64 {
	v.gsn++
	return v.gsn
}

// newProc creates a process running fn with the given arguments.
func (v *VM) newProc(fn *bytecode.Func, args []int64, fromGsn uint64) *Proc {
	p := &Proc{
		PID:    len(v.Procs),
		Status: StatusReady,
	}
	if v.Opts.Mode != ModeEmulate {
		// The internal-edge access sets only exist for markRead/markWrite
		// and fillEdgeSets, all ModeLog-gated.
		p.reads = bitset.New(v.numGlobals)
		p.writes = bitset.New(v.numGlobals)
	}
	p.Frames = []*Frame{v.newFrame(p, fn, args)}
	v.Procs = append(v.Procs, p)
	v.ready = append(v.ready, p)
	switch v.Opts.Mode {
	case ModeLog:
		p.Book = v.Log.BookFor(p.PID)
		rec := p.Book.NewRecord()
		rec.Kind = logging.RecStart
		rec.FromGsn = fromGsn
		p.Book.Append(rec)
	case ModeFullTrace:
		p.Tbuf = v.Trace.BufferFor(p.PID)
	}
	return p
}

func (v *VM) newFrame(p *Proc, fn *bytecode.Func, args []int64) *Frame {
	var f *Frame
	if n := len(p.spare); n > 0 && cap(p.spare[n-1].Slots) >= fn.NumSlots {
		f = p.spare[n-1]
		p.spare = p.spare[:n-1]
		f.Fn = fn
		f.PC = 0
		f.Stack = f.Stack[:0]
		f.Slots = f.Slots[:fn.NumSlots]
		clear(f.Slots)
		f.arrSnap = nil
	} else {
		f = &Frame{
			Fn:    fn,
			Slots: make([]Value, fn.NumSlots),
			Stack: make([]int64, 0, 16),
		}
	}
	for slot, length := range fn.ArraySlots {
		f.Slots[slot] = Value{Arr: make([]int64, length)}
	}
	if v.Opts.Mode == ModeLog && len(fn.ArraySlots) > 0 {
		f.arrSnap = make([]arrSnap, fn.NumSlots)
	}
	for i, a := range args {
		f.Slots[fn.ParamSlots[i]] = Value{Int: a}
	}
	return f
}

// releaseFrame recycles a popped frame onto the process's freelist.
// Emulation frames are excluded: hooks may retain references across the
// emulated interval.
func (v *VM) releaseFrame(p *Proc, f *Frame) {
	if v.Opts.Mode == ModeEmulate || len(p.spare) >= maxSpareFrames {
		return
	}
	f.Fn = nil
	p.spare = append(p.spare, f)
}

// Run executes the program to completion (all processes done), failure, or
// deadlock. It returns the first runtime error, if any.
func (v *VM) Run() error {
	main := v.Prog.Funcs[v.Prog.MainIdx]
	v.newProc(main, nil, 0)
	sc := v.Opts.Obs.Scope("exec.run")
	err := v.loop()
	sc.End()
	v.flushHaltedEdges()
	v.foldObs()
	return v.closeSink(err)
}

// RunFunc executes the program with fn(args) as the initial process instead
// of main — used by replay's what-if restarts (§5.7).
func (v *VM) RunFunc(fn *bytecode.Func, args []int64) error {
	v.newProc(fn, args, 0)
	sc := v.Opts.Obs.Scope("exec.run")
	err := v.loop()
	sc.End()
	v.flushHaltedEdges()
	v.foldObs()
	return v.closeSink(err)
}

// closeSink flushes the streaming sink, if any, after the final records
// (exit flushes included) are appended. A sink failure is reported through
// SinkErr and, when the run itself succeeded, as the returned error.
func (v *VM) closeSink(runErr error) error {
	if v.Log == nil || !v.Log.Streamed() {
		return runErr
	}
	if err := v.Log.CloseStream(); err != nil {
		v.SinkErr = err
		if runErr == nil {
			return err
		}
	}
	return runErr
}

// foldObs publishes the run's plain-field tallies into the sink, once.
func (v *VM) foldObs() {
	sink := v.Opts.Obs
	if sink == nil {
		return
	}
	sink.Counter("exec.steps").Add(v.Steps)
	sink.Counter("exec.ctxswitches").Add(v.CtxSwitches)
	sink.Counter("exec.procs").Add(int64(len(v.Procs)))
	sink.Counter("exec.syncs").Add(int64(v.gsn))
}

// flushHaltedEdges appends a final record for every process that did not
// exit cleanly (failure or deadlock), capturing its in-progress internal
// edge's shared read/write sets — the paper's timely halting of
// co-operating processes (§5.7) needs each process's state at the halt.
func (v *VM) flushHaltedEdges() {
	if v.Opts.Mode != ModeLog {
		return
	}
	for _, p := range v.Procs {
		if p.Status == StatusDone {
			continue
		}
		status := logging.ExitFailed
		if v.BreakHit {
			status = logging.ExitBreak
		}
		stmt := p.CurrentStmt()
		switch p.Status {
		case StatusBlockedSem:
			status = logging.ExitBlockedSem
			stmt = p.blockStmt
		case StatusBlockedSend:
			status = logging.ExitBlockedSend
			stmt = p.blockStmt
		case StatusBlockedRecv:
			status = logging.ExitBlockedRecv
			stmt = p.blockStmt
		case StatusFailed:
			if p.Err != nil {
				stmt = p.Err.Stmt
			}
		}
		rec := p.Book.NewRecord()
		rec.Kind, rec.Stmt, rec.Value, rec.Obj = logging.RecExit, stmt, status, -1
		if status >= logging.ExitBlockedSem && status <= logging.ExitBlockedRecv {
			rec.Obj = p.waitObj
		}
		p.fillEdgeSets(rec)
		p.Book.Append(rec)
	}
}

func (v *VM) loop() error {
	rr := 0
	var done <-chan struct{}
	if v.Opts.Ctx != nil {
		done = v.Opts.Ctx.Done()
	}
	for {
		if done != nil {
			select {
			case <-done:
				return v.Opts.Ctx.Err()
			default:
			}
		}
		// Drop finished/blocked processes from the ready queue lazily.
		live := v.ready[:0]
		for _, p := range v.ready {
			if p.Status == StatusReady {
				live = append(live, p)
			}
		}
		v.ready = live
		if len(v.ready) == 0 {
			if v.Failure != nil {
				return v.Failure
			}
			// All done, or deadlock?
			blocked := 0
			for _, p := range v.Procs {
				switch p.Status {
				case StatusBlockedSem, StatusBlockedSend, StatusBlockedRecv:
					blocked++
				}
			}
			if blocked > 0 {
				v.Deadlock = true
				return fmt.Errorf("deadlock: %d process(es) blocked", blocked)
			}
			return nil
		}

		var p *Proc
		if v.Opts.Seed == 0 {
			p = v.ready[rr%len(v.ready)]
			rr++
		} else {
			p = v.ready[v.rng.Intn(len(v.ready))]
		}
		if p != v.lastSched {
			if v.lastSched != nil {
				v.CtxSwitches++
			}
			v.lastSched = p
		}

		// One scheduling slice: the interpreter specialization was decided
		// at New (loops.go), so the per-instruction mode/trace/break
		// predicates are not re-evaluated inside the dispatch path.
		switch v.sliceKind {
		case sliceRun, sliceLog:
			if v.prof != nil {
				v.runSliceTabProf(p)
			} else {
				v.runSliceTab(p)
			}
		case sliceTrace:
			v.runSliceTrace(p)
		default:
			v.runSliceGeneric(p)
		}
		if v.Failure != nil {
			return v.Failure
		}
		if v.BreakHit {
			return nil
		}
	}
}

// fail records a runtime failure and halts the whole execution (the paper's
// "program halts due to an error" trigger for the debugging phase).
func (v *VM) fail(p *Proc, stmt ast.StmtID, format string, args ...any) {
	err := &RuntimeError{PID: p.PID, Stmt: stmt, Msg: fmt.Sprintf(format, args...)}
	p.Err = err
	p.Status = StatusFailed
	v.Failure = err
}

// finish marks a process done, flushing its final internal edge (§5.6).
func (v *VM) finish(p *Proc) {
	p.Status = StatusDone
	if v.Opts.Mode == ModeLog {
		rec := p.Book.NewRecord()
		rec.Kind, rec.Value = logging.RecExit, logging.ExitClean
		p.fillEdgeSets(rec)
		p.Book.Append(rec)
	}
	if v.Opts.Mode == ModeFullTrace {
		p.Tbuf.Append(trace.Event{Kind: trace.EvEnd})
	}
}

// fillEdgeSets moves the current internal edge's shared read/write sets
// into rec (reusing the record's slice capacity when it was recycled) and
// resets them.
func (p *Proc) fillEdgeSets(rec *logging.Record) {
	rec.Reads = p.reads.AppendTo(rec.Reads)
	rec.Writes = p.writes.AppendTo(rec.Writes)
	p.reads.Clear()
	p.writes.Clear()
}

// CurrentStmt reports where a process is stopped (for the debugger UI).
func (p *Proc) CurrentStmt() ast.StmtID {
	if len(p.Frames) == 0 {
		return ast.NoStmt
	}
	f := p.top()
	if f.PC < len(f.Fn.Code) {
		return f.Fn.Code[f.PC].Stmt
	}
	return ast.NoStmt
}

// Snapshot returns a copy of the global state (used by replay tests).
func (v *VM) Snapshot() []Value {
	out := make([]Value, len(v.Globals))
	for i, g := range v.Globals {
		out[i] = g.Clone()
	}
	return out
}

// SnapshotInto is Snapshot cloning into dst's backing: array values reuse
// dst's arrays when the lengths match, so a recycled result re-snapshots
// without allocating.
func (v *VM) SnapshotInto(dst []Value) []Value {
	if cap(dst) < len(v.Globals) {
		dst = make([]Value, len(v.Globals))
	}
	dst = dst[:len(v.Globals)]
	for i, g := range v.Globals {
		if g.Arr != nil {
			if d := dst[i].Arr; len(d) == len(g.Arr) {
				copy(d, g.Arr)
				dst[i] = Value{Int: g.Int, Arr: d}
				continue
			}
			dst[i] = g.Clone()
			continue
		}
		dst[i] = g
	}
	return dst
}

// ResetEmu returns a ModeEmulate VM to its freshly-constructed state so the
// pooled replay context (package emulation) can reuse it: globals back to
// their initial values (array backings reused), process table emptied, all
// run outcome fields cleared. Only valid for VMs built with ModeEmulate.
func (v *VM) ResetEmu() {
	for i, g := range v.Prog.Globals {
		if g.Kind == bytecode.GlobalVar && g.IsArray {
			if a := v.Globals[i].Arr; len(a) == g.Len {
				clear(a)
				v.Globals[i] = Value{Arr: a}
			} else {
				v.Globals[i] = Value{Arr: make([]int64, g.Len)}
			}
			continue
		}
		if g.Kind == bytecode.GlobalVar && g.HasInit {
			v.Globals[i] = Value{Int: g.Init}
			continue
		}
		v.Globals[i] = Value{}
	}
	v.Procs = v.Procs[:0]
	v.ready = v.ready[:0]
	v.gsn = 0
	v.Steps = 0
	v.emuCold = 0
	v.CtxSwitches = 0
	v.lastSched = nil
	v.Failure = nil
	v.Deadlock = false
	v.BreakHit = false
	v.emuStop = false
	v.hooks = nil
}

// EmuDispatchStats reports how a ModeEmulate run's instructions were
// dispatched: through the emu fast tables vs through the generic stepT
// oracle (hook-delegated instructions, or the whole run under EmuGeneric).
func (v *VM) EmuDispatchStats() (fast, cold int64) {
	return v.Steps - v.emuCold, v.emuCold
}
