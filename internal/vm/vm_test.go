package vm

import (
	"bytes"
	"strings"
	"testing"

	"ppd/internal/ast"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/logging"
	"ppd/internal/obs"
)

// run compiles and executes src, returning the VM and its print output.
func run(t *testing.T, src string, opts Options) (*VM, string) {
	t.Helper()
	art, err := compile.CompileSource("test.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out bytes.Buffer
	opts.Output = &out
	v := New(art.Prog, opts)
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	return v, out.String()
}

// runErr runs expecting a failure.
func runErr(t *testing.T, src string, opts Options) (*VM, error) {
	t.Helper()
	art, err := compile.CompileSource("test.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var out bytes.Buffer
	opts.Output = &out
	v := New(art.Prog, opts)
	rerr := v.Run()
	if rerr == nil {
		t.Fatalf("expected runtime error, got none; output:\n%s", out.String())
	}
	return v, rerr
}

func TestArithmetic(t *testing.T) {
	_, out := run(t, `
func main() {
	print(2 + 3 * 4);
	print(10 / 3, " ", 10 % 3);
	print(-5 + 2);
	print((2 + 3) * 4);
}`, Options{})
	want := "14\n3 1\n-3\n20\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	_, out := run(t, `
func main() {
	if (1 < 2 && 2 <= 2 && 3 > 2 && 3 >= 3 && 1 == 1 && 1 != 2) { print("ok"); }
	if (1 > 2 || 2 == 2) { print("or"); }
	if (!(1 > 2)) { print("not"); }
}`, Options{})
	if out != "ok\nor\nnot\n" {
		t.Errorf("output = %q", out)
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand must not evaluate when the left decides: a div-by-
	// zero in the right operand would fail the run.
	_, out := run(t, `
func boom() int { return 1 / 0; }
func main() {
	var x = 0;
	if (x == 0 || boom() == 1) { print("sc-or"); }
	if (x == 1 && boom() == 1) { print("never"); } else { print("sc-and"); }
}`, Options{})
	if out != "sc-or\nsc-and\n" {
		t.Errorf("output = %q", out)
	}
}

func TestWhileForBreakContinue(t *testing.T) {
	_, out := run(t, `
func main() {
	var s = 0;
	for (var i = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) { continue; }
		if (i > 7) { break; }
		s = s + i;
	}
	print(s);
	var n = 3;
	while (n > 0) { n = n - 1; }
	print(n);
}`, Options{})
	if out != "16\n0\n" { // 1+3+5+7
		t.Errorf("output = %q", out)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	_, out := run(t, `
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() { print(fib(15)); }`, Options{})
	if out != "610\n" {
		t.Errorf("fib(15) = %q, want 610", out)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	_, out := run(t, `
var g = 7;
shared arr[5];
func bump(i int) { arr[i] = arr[i] + g; }
func main() {
	var i = 0;
	while (i < 5) { bump(i); i = i + 1; }
	arr[2] = arr[2] * 2;
	print(arr[0], " ", arr[2], " ", arr[4]);
}`, Options{})
	if out != "7 14 7\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLocalArrays(t *testing.T) {
	_, out := run(t, `
func main() {
	var a[4];
	a[0] = 3;
	a[3] = a[0] * 2;
	print(a[0] + a[3]);
}`, Options{})
	if out != "9\n" {
		t.Errorf("output = %q", out)
	}
}

func TestBoolValues(t *testing.T) {
	_, out := run(t, `
func main() {
	var b = true;
	var c = false;
	if (b) { print(1); }
	if (!c) { print(2); }
}`, Options{})
	if out != "1\n2\n" {
		t.Errorf("output = %q", out)
	}
}

func TestDivideByZeroFailure(t *testing.T) {
	v, err := runErr(t, `
func main() {
	var x = 0;
	print(1 / x);
}`, Options{})
	if !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
	if v.Failure == nil || v.Failure.PID != 0 {
		t.Errorf("failure = %+v", v.Failure)
	}
}

func TestArrayBoundsFailure(t *testing.T) {
	_, err := runErr(t, `
shared a[3];
func main() { a[5] = 1; }`, Options{})
	if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
}

func TestSpawnAndSemaphores(t *testing.T) {
	// Counter protected by a binary semaphore: no lost updates regardless
	// of seed.
	src := `
shared counter;
sem mutex = 1;
sem done = 0;
func worker(n int) {
	var i = 0;
	while (i < n) {
		P(mutex);
		counter = counter + 1;
		V(mutex);
		i = i + 1;
	}
	V(done);
}
func main() {
	spawn worker(50);
	spawn worker(50);
	P(done);
	P(done);
	print(counter);
}`
	for _, seed := range []int64{0, 1, 7, 42} {
		_, out := run(t, src, Options{Seed: seed, Quantum: 3})
		if out != "100\n" {
			t.Errorf("seed %d: output = %q, want 100", seed, out)
		}
	}
}

func TestChannelsUnbuffered(t *testing.T) {
	src := `
chan c;
func producer(n int) {
	var i = 0;
	while (i < n) { send(c, i * i); i = i + 1; }
}
func main() {
	spawn producer(5);
	var s = 0;
	var i = 0;
	while (i < 5) { s = s + recv(c); i = i + 1; }
	print(s);
}`
	for _, seed := range []int64{0, 3, 9} {
		_, out := run(t, src, Options{Seed: seed, Quantum: 2})
		if out != "30\n" { // 0+1+4+9+16
			t.Errorf("seed %d: output = %q", seed, out)
		}
	}
}

func TestChannelsBuffered(t *testing.T) {
	_, out := run(t, `
chan c[3];
func main() {
	send(c, 1);
	send(c, 2);
	send(c, 3);
	print(recv(c), " ", recv(c), " ", recv(c));
}`, Options{})
	if out != "1 2 3\n" {
		t.Errorf("output = %q (FIFO order expected)", out)
	}
}

func TestBufferedChannelBlocksWhenFull(t *testing.T) {
	// Capacity 1: producer must alternate with consumer.
	_, out := run(t, `
chan c[1];
sem done = 0;
func producer() {
	send(c, 1);
	send(c, 2);
	send(c, 3);
	V(done);
}
func main() {
	spawn producer();
	print(recv(c), recv(c), recv(c));
	P(done);
}`, Options{Quantum: 1})
	if out != "123\n" {
		t.Errorf("output = %q", out)
	}
}

func TestDeadlockDetected(t *testing.T) {
	art, err := compile.CompileSource("d.mpl", `
sem a = 0;
func main() { P(a); }`, eblock.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v := New(art.Prog, Options{})
	rerr := v.Run()
	if rerr == nil || !strings.Contains(rerr.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock", rerr)
	}
	if !v.Deadlock {
		t.Error("Deadlock flag not set")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	src := `
shared x;
sem done = 0;
func w(k int) { x = x + k; V(done); }
func main() {
	spawn w(1);
	spawn w(2);
	P(done);
	P(done);
	print(x);
}`
	art, err := compile.CompileSource("det.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{0, 5} {
		var out1, out2 bytes.Buffer
		v1 := New(art.Prog, Options{Seed: seed, Quantum: 1, Output: &out1})
		v2 := New(art.Prog, Options{Seed: seed, Quantum: 1, Output: &out2})
		if err := v1.Run(); err != nil {
			t.Fatal(err)
		}
		if err := v2.Run(); err != nil {
			t.Fatal(err)
		}
		if out1.String() != out2.String() || v1.Steps != v2.Steps {
			t.Errorf("seed %d: nondeterministic execution", seed)
		}
	}
}

func TestLogModeProducesRecords(t *testing.T) {
	v, _ := run(t, `
var g = 1;
func f(a int) int { g = g + a; return g; }
func main() { print(f(2)); }`, Options{Mode: ModeLog})
	if v.Log == nil || v.Log.NumProcs() != 1 {
		t.Fatal("no log produced")
	}
	book := v.Log.Books[0]
	var kinds []string
	for _, r := range book.Records {
		kinds = append(kinds, r.Kind.String())
	}
	joined := strings.Join(kinds, " ")
	// start, main prelog, f prelog, f postlog, main postlog, exit
	want := "start prelog prelog postlog postlog exit"
	if joined != want {
		t.Errorf("record kinds = %q, want %q", joined, want)
	}
	// f's postlog must carry g's new value and the return value.
	post := book.Records[3]
	if post.Ret == nil || post.Ret.Int != 3 {
		t.Errorf("f postlog ret = %v, want 3", post.Ret)
	}
	gVal, ok := post.Globals.Get(0)
	if !ok || gVal.Int != 3 {
		t.Errorf("f postlog globals = %v", post.Globals)
	}
}

func TestPrelogCapturesParamsAndUsedGlobals(t *testing.T) {
	v, _ := run(t, `
var g = 5;
func f(a int, b int) int { return a + b + g; }
func main() { print(f(1, 2)); }`, Options{Mode: ModeLog})
	book := v.Log.Books[0]
	var fPre *logging.Record
	for _, r := range book.Records[2:] { // skip start + main prelog
		if r.Kind == logging.RecPrelog {
			fPre = r
			break
		}
	}
	if fPre == nil {
		t.Fatal("no f prelog")
	}
	if fPre.Locals.Len() != 2 {
		t.Errorf("prelog locals = %v, want 2 params", fPre.Locals)
	}
	p0, _ := fPre.Locals.Get(0)
	p1, _ := fPre.Locals.Get(1)
	if p0.Int != 1 || p1.Int != 2 {
		t.Errorf("prelog param values = %v", fPre.Locals)
	}
	g0, _ := fPre.Globals.Get(0)
	if g0.Int != 5 {
		t.Errorf("prelog globals = %v", fPre.Globals)
	}
}

func TestSyncRecordsAndEdgeSets(t *testing.T) {
	v, _ := run(t, `
shared sv;
sem s = 1;
sem done = 0;
func w() {
	P(s);
	sv = sv + 1;
	V(s);
	V(done);
}
func main() {
	spawn w();
	P(done);
	print(sv);
}`, Options{Mode: ModeLog, Quantum: 1})
	// Worker's V(s) record must carry sv in both read and write sets of the
	// internal edge between P(s) and V(s).
	book := v.Log.Books[1]
	var found bool
	for _, r := range book.Records {
		if r.Kind == logging.RecSync && r.Op == logging.OpV {
			if len(r.Writes) == 1 && r.Writes[0] == 0 && len(r.Reads) == 1 {
				found = true
			}
			break
		}
	}
	if !found {
		t.Errorf("V record missing edge sets; book:\n%s", bookString(book))
	}
}

func bookString(b *logging.Book) string {
	var sb strings.Builder
	for _, r := range b.Records {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestSemaphoreUnblockEdge(t *testing.T) {
	// done starts 0; main blocks on P(done); worker's V unblocks it:
	// main's P record must carry FromGsn = worker's V gsn.
	v, _ := run(t, `
sem done = 0;
func w() { V(done); }
func main() {
	spawn w();
	P(done);
}`, Options{Mode: ModeLog, Quantum: 1})
	var vGsn uint64
	for _, r := range v.Log.Books[1].Records {
		if r.Kind == logging.RecSync && r.Op == logging.OpV {
			vGsn = r.Gsn
		}
	}
	var pFrom uint64
	for _, r := range v.Log.Books[0].Records {
		if r.Kind == logging.RecSync && r.Op == logging.OpP {
			pFrom = r.FromGsn
		}
	}
	if vGsn == 0 || pFrom != vGsn {
		t.Errorf("P.FromGsn = %d, want V gsn %d", pFrom, vGsn)
	}
}

func TestSendRecvEdges(t *testing.T) {
	v, _ := run(t, `
chan c;
func w() { send(c, 42); }
func main() {
	spawn w();
	print(recv(c));
}`, Options{Mode: ModeLog, Quantum: 1})
	var sendGsn, recvGsn, recvFrom, unblockFrom uint64
	for _, b := range v.Log.Books {
		for _, r := range b.Records {
			if r.Kind != logging.RecSync {
				continue
			}
			switch r.Op {
			case logging.OpSend:
				sendGsn = r.Gsn
			case logging.OpRecv:
				recvGsn, recvFrom = r.Gsn, r.FromGsn
			case logging.OpUnblock:
				unblockFrom = r.FromGsn
			}
		}
	}
	if recvFrom != sendGsn {
		t.Errorf("recv.FromGsn = %d, want send gsn %d", recvFrom, sendGsn)
	}
	if unblockFrom != recvGsn {
		t.Errorf("unblock.FromGsn = %d, want recv gsn %d", unblockFrom, recvGsn)
	}
}

func TestSpawnEdge(t *testing.T) {
	v, _ := run(t, `
func w() { print(1); }
func main() { spawn w(); }`, Options{Mode: ModeLog})
	var spawnGsn uint64
	for _, r := range v.Log.Books[0].Records {
		if r.Kind == logging.RecSync && r.Op == logging.OpSpawn {
			spawnGsn = r.Gsn
		}
	}
	start := v.Log.Books[1].Records[0]
	if start.Kind != logging.RecStart || start.FromGsn != spawnGsn {
		t.Errorf("child start = %v, want FromGsn %d", start, spawnGsn)
	}
}

func TestFullTraceEvents(t *testing.T) {
	v, _ := run(t, `
func main() {
	var a = 2;
	var b = a * 3;
	if (b > 5) { print(b); }
}`, Options{Mode: ModeFullTrace})
	if v.Trace == nil || len(v.Trace.Buffers) != 1 {
		t.Fatal("no trace")
	}
	s := v.Trace.Buffers[0].String()
	for _, want := range []string{"write s1", "read s2", "write s2", "pred s3 =1"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %q:\n%s", want, s)
		}
	}
}

func TestTraceSmallerInLogMode(t *testing.T) {
	src := `
func main() {
	var s = 0;
	for (var i = 0; i < 200; i = i + 1) { s = s + i; }
	print(s);
}`
	art, err := compile.CompileSource("sz.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatal(err)
	}
	vLog := New(art.Prog, Options{Mode: ModeLog})
	if err := vLog.Run(); err != nil {
		t.Fatal(err)
	}
	vTr := New(art.Prog, Options{Mode: ModeFullTrace})
	if err := vTr.Run(); err != nil {
		t.Fatal(err)
	}
	logSize, trSize := vLog.Log.SizeBytes(), vTr.Trace.SizeBytes()
	if logSize*10 > trSize {
		t.Errorf("log (%d bytes) should be far smaller than full trace (%d bytes)", logSize, trSize)
	}
}

func TestShPrelogEmitted(t *testing.T) {
	// Shared prelogs appear only where another process may have written the
	// variable (§5.5 refined by cross-write analysis): the worker writes
	// sv, so main's unit after P(done) must log sv's value.
	v, _ := run(t, `
shared sv;
sem done = 0;
func w() { sv = sv + 1; V(done); }
func main() {
	spawn w();
	P(done);
	print(sv);
}`, Options{Mode: ModeLog, Quantum: 1})
	found := false
	for _, r := range v.Log.Books[0].Records {
		if r.Kind == logging.RecShPrelog {
			if _, ok := r.Globals.Get(0); ok {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no shared prelog with sv; log:\n%s", bookString(v.Log.Books[0]))
	}
}

func TestNoShPrelogInSingleProcess(t *testing.T) {
	// A program that never spawns needs no shared prelogs at all: its own
	// re-execution reproduces every value.
	v, _ := run(t, `
shared sv;
sem s = 1;
func main() {
	P(s);
	sv = sv + 1;
	V(s);
	print(sv);
}`, Options{Mode: ModeLog})
	for _, r := range v.Log.Books[0].Records {
		if r.Kind == logging.RecShPrelog {
			t.Errorf("spurious shared prelog in single-process program: %s", r)
		}
	}
}

func TestCallStackOverflow(t *testing.T) {
	_, err := runErr(t, `
func loop(n int) int { return loop(n + 1); }
func main() { print(loop(0)); }`, Options{})
	if !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("err = %v", err)
	}
}

func TestBareProgramMatchesInstrumented(t *testing.T) {
	src := `
var g = 3;
func f(n int) int {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + i * g; }
	return s;
}
func main() { print(f(10)); }`
	art, err := compile.CompileSource("a.mpl", src, eblock.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bare, err := compile.CompileBareSource("a.mpl", src)
	if err != nil {
		t.Fatal(err)
	}
	var o1, o2 bytes.Buffer
	if err := New(art.Prog, Options{Mode: ModeLog, Output: &o1}).Run(); err != nil {
		t.Fatal(err)
	}
	if err := New(bare.Prog, Options{Output: &o2}).Run(); err != nil {
		t.Fatal(err)
	}
	if o1.String() != o2.String() {
		t.Errorf("instrumented output %q != bare output %q", o1.String(), o2.String())
	}
	if bare.Prog.NumInstrs() >= art.Prog.NumInstrs() {
		t.Error("bare program should have fewer instructions")
	}
}

func TestManyProcesses(t *testing.T) {
	_, out := run(t, `
shared total;
sem m = 1;
sem done = 0;
func w(k int) {
	P(m);
	total = total + k;
	V(m);
	V(done);
}
func main() {
	var i = 1;
	while (i <= 8) { spawn w(i); i = i + 1; }
	var j = 0;
	while (j < 8) { P(done); j = j + 1; }
	print(total);
}`, Options{Seed: 11, Quantum: 2})
	if out != "36\n" {
		t.Errorf("output = %q, want 36", out)
	}
}

func TestBreakpointHaltsAllProcesses(t *testing.T) {
	src := `
shared progress;
sem done = 0;
func w() {
	var i = 0;
	while (i < 100) {
		progress = progress + 1;
		i = i + 1;
	}
	V(done);
}
func main() {
	spawn w();
	P(done);
	print(progress);
}`
	art, err := compile.CompileSource("bp.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Break at V(done) in the worker: execution must halt before main's
	// print, with all logs flushed.
	var target ast.StmtID
	for id := ast.StmtID(1); id <= ast.StmtID(art.Info.Prog.NumStmts); id++ {
		if st := art.Info.Prog.StmtByID(id); st != nil && ast.StmtString(st) == "V(done)" {
			target = id
		}
	}
	if target == ast.NoStmt {
		t.Fatal("no V(done) statement")
	}
	var out bytes.Buffer
	v := New(art.Prog, Options{Mode: ModeLog, Quantum: 5, Output: &out, BreakAt: target})
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !v.BreakHit {
		t.Fatal("breakpoint not hit")
	}
	if out.Len() != 0 {
		t.Errorf("main printed despite the halt: %q", out.String())
	}
	last := v.Log.Books[1].Records[v.Log.Books[1].Len()-1]
	if last.Kind != logging.RecExit || last.Value != logging.ExitBreak {
		t.Errorf("worker exit record = %v", last)
	}
	if v.Globals[0].Int != 100 {
		t.Errorf("progress = %d, want 100", v.Globals[0].Int)
	}
	if v.Procs[1].CurrentStmt() != target {
		t.Errorf("worker stopped at s%d, want s%d", v.Procs[1].CurrentStmt(), target)
	}
}

func TestBreakpointNeverHitRunsToCompletion(t *testing.T) {
	art, err := compile.CompileSource("nb.mpl", `
func main() { print(1); }`, eblock.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	v := New(art.Prog, Options{Output: &out, BreakAt: ast.StmtID(999)})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.BreakHit || out.String() != "1\n" {
		t.Errorf("hit=%t out=%q", v.BreakHit, out.String())
	}
}

func TestModeAndStatusStrings(t *testing.T) {
	if ModeRun.String() != "run" || ModeLog.String() != "log" ||
		ModeFullTrace.String() != "fulltrace" || Mode(42).String() != "?" {
		t.Error("mode strings wrong")
	}
	wants := map[Status]string{
		StatusReady: "ready", StatusBlockedSem: "blocked-P",
		StatusBlockedSend: "blocked-send", StatusBlockedRecv: "blocked-recv",
		StatusDone: "done", StatusFailed: "failed",
	}
	for s, w := range wants {
		if s.String() != w {
			t.Errorf("%d = %q, want %q", s, s.String(), w)
		}
	}
	if Status(99).String() != "?" {
		t.Error("unknown status")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	v, _ := run(t, `
shared arr[2];
var g = 7;
func main() { arr[0] = 5; }`, Options{})
	snap := v.Snapshot()
	snap[0].Arr[0] = 99
	if v.Globals[0].Arr[0] == 99 {
		t.Error("snapshot shares array storage")
	}
	if snap[1].Int != 7 {
		t.Errorf("scalar = %d", snap[1].Int)
	}
}

func TestRandomSeedSchedulerStillCorrect(t *testing.T) {
	// Heavily preempted random scheduling must preserve the protected
	// counter's invariant for every seed.
	src := `
shared n;
sem m = 1;
sem done = 0;
func w() {
	var i = 0;
	while (i < 20) { P(m); n = n + 1; V(m); i = i + 1; }
	V(done);
}
func main() {
	spawn w(); spawn w(); spawn w();
	P(done); P(done); P(done);
	print(n);
}`
	for seed := int64(1); seed <= 10; seed++ {
		_, out := run(t, src, Options{Seed: seed, Quantum: 1})
		if out != "60\n" {
			t.Errorf("seed %d: %q", seed, out)
		}
	}
}

func TestMaxStepsBudget(t *testing.T) {
	art, err := compile.CompileSource("inf.mpl", `
func main() {
	var x = 0;
	while (x == 0) { x = x * 1; }
}`, eblock.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v := New(art.Prog, Options{MaxSteps: 10000})
	if err := v.Run(); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("err = %v, want budget exhaustion", err)
	}
}

func TestFullTraceParallelSyncEvents(t *testing.T) {
	v, _ := run(t, `
sem s = 0;
chan c[1];
func w() { send(c, 3); V(s); }
func main() {
	spawn w();
	P(s);
	print(recv(c));
}`, Options{Mode: ModeFullTrace, Quantum: 1})
	all := ""
	for _, b := range v.Trace.Buffers {
		all += b.String()
	}
	for _, want := range []string{"sync", "send", "recv", "spawn"} {
		if !strings.Contains(all, want) {
			t.Errorf("full trace missing %q:\n%s", want, all)
		}
	}
}

func TestObsFoldsExecutionCounters(t *testing.T) {
	sink := obs.New()
	v, _ := run(t, `
sem done = 0;
func w(n int) { print(n); V(done); }
func main() { spawn w(1); spawn w(2); P(done); P(done); }`,
		Options{Mode: ModeLog, Quantum: 1, Obs: sink})
	snap := sink.Snapshot()
	if got := snap.Counter("exec.steps"); got != v.Steps {
		t.Errorf("exec.steps = %d, VM counted %d", got, v.Steps)
	}
	if got := snap.Counter("exec.procs"); got != 3 {
		t.Errorf("exec.procs = %d, want 3", got)
	}
	if got := snap.Counter("exec.ctxswitches"); got != v.CtxSwitches || got == 0 {
		t.Errorf("exec.ctxswitches = %d (VM field %d), want equal and > 0", got, v.CtxSwitches)
	}
	if got := snap.Counter("exec.syncs"); got == 0 {
		t.Error("exec.syncs = 0, want > 0 (the program synchronizes)")
	}
	if snap.Timer("exec.run").Count != 1 {
		t.Error("exec.run scope not observed exactly once")
	}
}

func TestObsNilSinkIdenticalExecution(t *testing.T) {
	src := `
func main() {
	var i = 0;
	while (i < 10) { i = i + 1; }
	print(i);
}`
	vOff, outOff := run(t, src, Options{Mode: ModeLog})
	vOn, outOn := run(t, src, Options{Mode: ModeLog, Obs: obs.New()})
	if outOff != outOn {
		t.Errorf("output differs: %q vs %q", outOff, outOn)
	}
	if vOff.Steps != vOn.Steps {
		t.Errorf("steps differ: %d vs %d", vOff.Steps, vOn.Steps)
	}
	if vOff.Log.SizeBytes() != vOn.Log.SizeBytes() {
		t.Errorf("log size differs: %d vs %d", vOff.Log.SizeBytes(), vOn.Log.SizeBytes())
	}
}

func TestCtxSwitchesSingleProcessIsZero(t *testing.T) {
	v, _ := run(t, `func main() { print(1); }`, Options{Mode: ModeRun})
	if v.CtxSwitches != 0 {
		t.Errorf("CtxSwitches = %d for a single process, want 0", v.CtxSwitches)
	}
}
