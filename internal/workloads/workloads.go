// Package workloads provides the MPL benchmark programs used by the
// experiment harness (cmd/ppdbench) and the top-level benchmarks. They are
// modelled on the program classes the paper's informal experiments used
// (§7: "hand-annotating programs using the semantic analyses" and measuring
// tracing overhead): a compute-bound kernel, a producer/consumer pipeline,
// a token ring, and a recursive divide-and-conquer — spanning the spectrum
// from sync-free number crunching to sync-heavy message passing.
package workloads

import (
	"fmt"
	"strings"
)

// Workload is one benchmark program.
type Workload struct {
	Name string
	Desc string
	Src  string
	// Procs is the number of processes the program spawns (including main).
	Procs int
	// Output is the expected program output (sanity check for harnesses).
	Output string
}

// Matmul multiplies two n×n matrices in a single process: the compute-bound
// extreme, with subroutine e-blocks in the inner loops' call chain.
func Matmul(n int) *Workload {
	src := fmt.Sprintf(`
shared a[%d];
shared b[%d];
shared c[%d];
var n = %d;

func idx(i int, j int) int { return i * n + j; }

func fill() {
	var i = 0;
	while (i < n) {
		var j = 0;
		while (j < n) {
			a[idx(i, j)] = i + j;
			b[idx(i, j)] = i - j;
			j = j + 1;
		}
		i = i + 1;
	}
}

func rowcol(i int, j int) int {
	var s = 0;
	var k = 0;
	while (k < n) {
		s = s + a[idx(i, k)] * b[idx(k, j)];
		k = k + 1;
	}
	return s;
}

func multiply() {
	var i = 0;
	while (i < n) {
		var j = 0;
		while (j < n) {
			c[idx(i, j)] = rowcol(i, j);
			j = j + 1;
		}
		i = i + 1;
	}
}

func trace_() int {
	var t = 0;
	var i = 0;
	while (i < n) {
		t = t + c[idx(i, i)];
		i = i + 1;
	}
	return t;
}

func main() {
	fill();
	multiply();
	print("trace=", trace_());
}
`, n*n, n*n, n*n, n)
	tr := 0
	ai := func(i, j int) int { return i + j }
	bi := func(i, j int) int { return i - j }
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			tr += ai(i, k) * bi(k, i)
		}
	}
	return &Workload{
		Name:   "matmul",
		Desc:   fmt.Sprintf("%dx%d matrix multiply (compute-bound, no sync)", n, n),
		Src:    src,
		Procs:  1,
		Output: fmt.Sprintf("trace=%d\n", tr),
	}
}

// ProdCons runs producers feeding consumers through a bounded channel —
// the classic sync-heavy pipeline.
func ProdCons(items int) *Workload {
	src := fmt.Sprintf(`
chan queue[4];
shared consumed;
sem done = 0;
var items = %d;

func producer() {
	var i = 1;
	while (i <= items) {
		send(queue, i);
		i = i + 1;
	}
	send(queue, -1);
}

func digest(v int) int {
	var h = v;
	var k = 0;
	while (k < 6) {
		h = (h * 31 + v) %% 65536;
		k = k + 1;
	}
	return h;
}

func consumer() {
	var total = 0;
	var check = 0;
	var v = recv(queue);
	while (v >= 0) {
		total = total + v;
		check = digest(check + v);
		v = recv(queue);
	}
	consumed = total;
	V(done);
}

func main() {
	spawn producer();
	spawn consumer();
	P(done);
	print("sum=", consumed);
}
`, items)
	return &Workload{
		Name:   "prodcons",
		Desc:   fmt.Sprintf("producer/consumer, %d items over a bounded channel", items),
		Src:    src,
		Procs:  3,
		Output: fmt.Sprintf("sum=%d\n", items*(items+1)/2),
	}
}

// TokenRing passes a token around a ring of workers, each adding its id —
// many small synchronized critical sections.
func TokenRing(workers, rounds int) *Workload {
	src := fmt.Sprintf(`
shared token;
chan hand[1];
sem done = 0;
var workers = %d;
var rounds = %d;

func work(t int) int {
	var acc = t;
	var k = 0;
	while (k < 12) {
		acc = (acc * 7 + k) %% 10007;
		k = k + 1;
	}
	return acc;
}

func worker(id int) {
	var r = 0;
	var checksum = 0;
	while (r < rounds) {
		var t = recv(hand);
		checksum = checksum + work(t);
		token = t + id;
		send(hand, token);
		r = r + 1;
	}
	V(done);
}

func main() {
	var w = 1;
	while (w <= workers) {
		spawn worker(w);
		w = w + 1;
	}
	send(hand, 0);
	var d = 0;
	while (d < workers) {
		P(done);
		d = d + 1;
	}
	var final = recv(hand);
	print("token=", final);
}
`, workers, rounds)
	// Each worker adds its id `rounds` times, in some interleaved order;
	// the sum is deterministic: rounds * (1+..+workers).
	sum := rounds * workers * (workers + 1) / 2
	return &Workload{
		Name:   "tokenring",
		Desc:   fmt.Sprintf("%d workers passing a token %d rounds each", workers, rounds),
		Src:    src,
		Procs:  workers + 1,
		Output: fmt.Sprintf("token=%d\n", sum),
	}
}

// Relay chains main and `stages` workers into a message ring that main
// participates in every round: main injects a token, each stage bumps it
// and a shared hop counter, and main reads it back before injecting the
// next. Exactly one token is ever in flight, so every shared access is
// ordered through the chain (race-free) and — the property this workload
// exists for — every process synchronizes continuously. That keeps the
// online pipeline's happens-before frontier at O(stages) for the whole
// run, in contrast to ProdCons/TokenRing whose main blocks on P(done)
// from spawn to teardown and thus (correctly) pins the frontier open.
func Relay(stages, rounds int) *Workload {
	var sb strings.Builder
	sb.WriteString("shared hops;\n")
	for s := 0; s <= stages; s++ {
		fmt.Fprintf(&sb, "chan c%d[1];\n", s)
	}
	fmt.Fprintf(&sb, "var rounds = %d;\n", rounds)
	for s := 1; s <= stages; s++ {
		fmt.Fprintf(&sb, `
func s%d() {
	var r = 0;
	while (r < rounds) {
		var t = recv(c%d);
		hops = hops + 1;
		send(c%d, t + 1);
		r = r + 1;
	}
}
`, s, s-1, s)
	}
	sb.WriteString("\nfunc main() {\n")
	for s := 1; s <= stages; s++ {
		fmt.Fprintf(&sb, "\tspawn s%d();\n", s)
	}
	sb.WriteString(`	var r = 0;
	var t = 0;
	while (r < rounds) {
		send(c0, t);
		t = recv(c` + fmt.Sprint(stages) + `);
		r = r + 1;
	}
	print("token=", t);
}
`)
	return &Workload{
		Name:   "relay",
		Desc:   fmt.Sprintf("main plus %d stages relaying one token %d rounds", stages, rounds),
		Src:    sb.String(),
		Procs:  stages + 1,
		Output: fmt.Sprintf("token=%d\n", rounds*stages),
	}
}

// Divide computes a recursive divide-and-conquer sum — deep call nesting,
// exercising nested log intervals (§5.2).
func Divide(depth int) *Workload {
	src := fmt.Sprintf(`
var depth = %d;

func conquer(lo int, hi int) int {
	if (hi - lo <= 1) {
		var s = 0;
		var k = 0;
		while (k < 24) { s = s + lo; k = k + 1; }
		return s / 24;
	}
	var mid = (lo + hi) / 2;
	return conquer(lo, mid) + conquer(mid, hi);
}

func main() {
	var n = 1;
	var d = 0;
	while (d < depth) { n = n * 2; d = d + 1; }
	print("sum=", conquer(0, n));
}
`, depth)
	n := 1 << depth
	return &Workload{
		Name:   "divide",
		Desc:   fmt.Sprintf("divide-and-conquer sum over 2^%d leaves (deep nesting)", depth),
		Src:    src,
		Procs:  1,
		Output: fmt.Sprintf("sum=%d\n", n*(n-1)/2),
	}
}

// Standard returns the default experiment suite at moderate sizes.
func Standard() []*Workload {
	return []*Workload{
		Matmul(16),
		ProdCons(600),
		TokenRing(4, 100),
		Divide(11),
		Histo(60),
	}
}

// Histo is a single-process histogram-style kernel whose inner loop is
// built from exactly the operation shapes the abstract interpreter can
// certify: every indexed access uses the loop variable, provably in
// [0,16), and every division's divisor is provably nonzero (b+1 in
// [1,16], or the never-written constant scale). Without certificates
// none of these windows may fuse — the divisor or index check could
// trap mid-window — so this workload is what puts the certified
// SuperOp shapes (lldivs, lldiv, lgdiv, ldiv, idxload*, idxstore*)
// into the profile-guided fusion table.
func Histo(rounds int) *Workload {
	src := fmt.Sprintf(`
shared h[16];
var scale = 4;
var rounds = %d;

func main() {
	var buf[16];
	var acc = 0;
	var i = 0;
	while (i < rounds) {
		var b = 0;
		while (b < 16) {
			var v = acc + i;
			buf[b] = v;
			var u = buf[b];
			var d = b + 1;
			var q = u / d;
			var r = u %% d;
			var t = q + v / d;
			var p = v / scale;
			var w = v - r;
			h[b] = w;
			var y = h[b];
			acc = (y + t - (q + p) / d) %% 9973;
			b = b + 1;
		}
		i = i + 1;
	}
	print("acc=", acc);
}
`, rounds)
	// Mirror of main's arithmetic, op for op, in the same int64
	// semantics the VM uses — the expected output is computed, not
	// hand-pinned, so resizing the workload stays a one-line change.
	var buf, h [16]int64
	acc := int64(0)
	for i := int64(0); i < int64(rounds); i++ {
		for b := int64(0); b < 16; b++ {
			v := acc + i
			buf[b] = v
			u := buf[b]
			d := b + 1
			q := u / d
			r := u % d
			t := q + v/d
			p := v / 4
			w := v - r
			h[b] = w
			y := h[b]
			acc = (y + t - (q+p)/d) % 9973
		}
	}
	return &Workload{
		Name:   "histo",
		Desc:   fmt.Sprintf("%d rounds over 16 buckets of certified indexed/divide windows", rounds),
		Src:    src,
		Procs:  1,
		Output: fmt.Sprintf("acc=%d\n", acc),
	}
}

// Sharded generates a program with one shard variable and one mutex per
// worker: every worker's accesses are disjoint from the others', the ideal
// case for the variable-indexed race detector (E8) — many internal edges,
// tiny per-variable buckets, zero races.
func Sharded(workers, rounds int) *Workload {
	var sb []byte
	add := func(f string, args ...any) { sb = append(sb, []byte(fmt.Sprintf(f, args...))...) }
	add("var cfg = 7;\n")
	add("sem done = 0;\n")
	for i := 0; i < workers; i++ {
		add("shared g%d;\n", i)
		add("sem m%d = 1;\n", i)
	}
	for i := 0; i < workers; i++ {
		add(`
func w%d() {
	var i = 0;
	while (i < %d) {
		P(m%d);
		g%d = g%d + cfg;
		V(m%d);
		i = i + 1;
	}
	V(done);
}
`, i, rounds, i, i, i, i)
	}
	add("\nfunc main() {\n")
	for i := 0; i < workers; i++ {
		add("\tspawn w%d();\n", i)
	}
	add("\tvar d = 0;\n\twhile (d < %d) { P(done); d = d + 1; }\n", workers)
	add("}\n")
	return &Workload{
		Name:  fmt.Sprintf("sharded-%dx%d", workers, rounds),
		Desc:  fmt.Sprintf("%d workers × %d rounds on disjoint shards", workers, rounds),
		Src:   string(sb),
		Procs: workers + 1,
	}
}

// RacyTicker races like RacyCounter but synchronizes on a semaphore
// every iteration, so each increment lands in its own edge and racing
// edges surface within the first few iterations of the run — the shape
// early-abort (Options.StopAtFirstRace) is measured on. RacyCounter's
// workers, by contrast, produce one long edge each: their race is only
// detectable once a worker's whole loop has finished.
func RacyTicker(workers, rounds int) *Workload {
	src := fmt.Sprintf(`
shared counter;
sem m = 1;
sem done = 0;
var rounds = %d;

func w() {
	var i = 0;
	while (i < rounds) {
		P(m);
		V(m);
		counter = counter + 1;
		i = i + 1;
	}
	V(done);
}

func main() {
	var k = 0;
	while (k < %d) { spawn w(); k = k + 1; }
	var d = 0;
	while (d < %d) { P(done); d = d + 1; }
	print(counter);
}
`, rounds, workers, workers)
	return &Workload{
		Name:  "racy-ticker",
		Desc:  fmt.Sprintf("%d workers × %d racy increments with per-iteration sync", workers, rounds),
		Src:   src,
		Procs: workers + 1,
	}
}

// RacyCounter is the canonical racy program (unprotected shared counter)
// used by the race-detection experiments; protect toggles the mutex.
func RacyCounter(workers, increments int, protect bool) *Workload {
	lock, unlock := "", ""
	if protect {
		lock, unlock = "P(m);", "V(m);"
	}
	src := fmt.Sprintf(`
shared counter;
sem m = 1;
sem done = 0;
var incs = %d;

func w() {
	var i = 0;
	while (i < incs) {
		%s
		counter = counter + 1;
		%s
		i = i + 1;
	}
	V(done);
}

func main() {
	var k = 0;
	while (k < %d) { spawn w(); k = k + 1; }
	var d = 0;
	while (d < %d) { P(done); d = d + 1; }
	print(counter);
}
`, increments, lock, unlock, workers, workers)
	name := "racy-counter"
	if protect {
		name = "safe-counter"
	}
	return &Workload{
		Name:  name,
		Desc:  fmt.Sprintf("%d workers × %d increments, protect=%t", workers, increments, protect),
		Src:   src,
		Procs: workers + 1,
	}
}

// GuardedCounter is the fully disciplined sibling of RacyCounter: the
// workers' increments and main's final read all hold the binary
// semaphore m, so the lockset analysis proves the counter mutex-guarded
// and drops it from the conflict mask entirely. (RacyCounter's protect
// variant deliberately reads the counter in main without the lock, so
// it stays in the mask — this workload is the one where static pruning
// pays off on a genuinely contended variable.)
func GuardedCounter(workers, increments int) *Workload {
	src := fmt.Sprintf(`
shared counter;
sem m = 1;
sem done = 0;
var incs = %d;

func w() {
	var i = 0;
	while (i < incs) {
		P(m);
		counter = counter + 1;
		V(m);
		i = i + 1;
	}
	V(done);
}

func main() {
	var k = 0;
	while (k < %d) { spawn w(); k = k + 1; }
	var d = 0;
	while (d < %d) { P(done); d = d + 1; }
	P(m);
	print(counter);
	V(m);
}
`, increments, workers, workers)
	return &Workload{
		Name:   "guarded-counter",
		Desc:   fmt.Sprintf("%d workers × %d increments, every access lock-guarded", workers, increments),
		Src:    src,
		Procs:  workers + 1,
		Output: fmt.Sprintf("%d\n", workers*increments),
	}
}
