package workloads

import (
	"bytes"
	"testing"

	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/vm"
)

// TestWorkloadsCorrectAcrossModes runs every standard workload in every
// execution mode and seed combination and checks the program output — the
// instrumentation must never change program behaviour.
func TestWorkloadsCorrectAcrossModes(t *testing.T) {
	for _, w := range Standard() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			art, err := compile.CompileSource(w.Name+".mpl", w.Src, eblock.DefaultConfig())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			bare, err := compile.CompileBareSource(w.Name+".mpl", w.Src)
			if err != nil {
				t.Fatalf("compile bare: %v", err)
			}
			for _, mode := range []vm.Mode{vm.ModeRun, vm.ModeLog, vm.ModeFullTrace} {
				for _, seed := range []int64{0, 3} {
					var out bytes.Buffer
					v := vm.New(art.Prog, vm.Options{Mode: mode, Seed: seed, Quantum: 5, Output: &out})
					if err := v.Run(); err != nil {
						t.Fatalf("mode %v seed %d: %v", mode, seed, err)
					}
					if out.String() != w.Output {
						t.Errorf("mode %v seed %d: output %q, want %q", mode, seed, out.String(), w.Output)
					}
				}
			}
			var out bytes.Buffer
			v := vm.New(bare.Prog, vm.Options{Output: &out})
			if err := v.Run(); err != nil {
				t.Fatalf("bare: %v", err)
			}
			if out.String() != w.Output {
				t.Errorf("bare: output %q, want %q", out.String(), w.Output)
			}
		})
	}
}

func TestRacyCounterVariants(t *testing.T) {
	for _, protect := range []bool{false, true} {
		w := RacyCounter(3, 10, protect)
		art, err := compile.CompileSource(w.Name+".mpl", w.Src, eblock.Config{})
		if err != nil {
			t.Fatalf("protect=%t: %v", protect, err)
		}
		v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 1})
		if err := v.Run(); err != nil {
			t.Fatalf("protect=%t: %v", protect, err)
		}
	}
}
