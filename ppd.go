// Package ppd is the public API of the Parallel Program Debugger, a
// reproduction of Miller & Choi, "A Mechanism for Efficient Debugging of
// Parallel Programs" (PLDI 1988).
//
// PPD debugs MPL programs (a small C-like parallel language with processes,
// semaphores, and message channels) in the paper's three phases:
//
//  1. Preparatory — Compile produces the instrumented object code, the
//     static program dependence graph, the e-block plan, and the program
//     database.
//  2. Execution — Program.RunLogged executes on the simulated shared-memory
//     multiprocessor while generating the (small) incremental-tracing log:
//     prelogs, postlogs, shared prelogs, and synchronization records.
//  3. Debugging — Execution.Debugger answers flowback queries by emulating
//     individual e-block intervals on demand; Execution.Races applies the
//     happened-before race detector (Definitions 6.1–6.4).
//
// Quick start:
//
//	prog, err := ppd.Compile("demo.mpl", src)
//	exec, err := prog.RunLogged(ppd.Options{})
//	if exec.Failed() != nil {
//	    sess, _ := exec.Debugger()
//	    sess.Run(os.Stdin, os.Stdout)   // interactive flowback
//	}
//
// The examples/ directory contains runnable walkthroughs, and cmd/ppd is a
// complete CLI over the same API.
package ppd

import (
	"fmt"
	"io"

	"ppd/internal/ast"
	"ppd/internal/compile"
	"ppd/internal/controller"
	"ppd/internal/debugger"
	"ppd/internal/dynpdg"
	"ppd/internal/eblock"
	"ppd/internal/emulation"
	"ppd/internal/logging"
	"ppd/internal/parallel"
	"ppd/internal/race"
	"ppd/internal/replay"
	"ppd/internal/source"
	"ppd/internal/vm"
)

// Re-exported debugging-phase types. These are aliases so values returned
// by this package interoperate with the subsystem packages directly.
type (
	// Controller is the PPD Controller: the debugging-phase coordinator.
	Controller = controller.Controller
	// Session is an interactive textual debugging session.
	Session = debugger.Session
	// DynamicGraph is a dynamic program dependence graph.
	DynamicGraph = dynpdg.Graph
	// ParallelGraph is the parallel dynamic graph of one execution.
	ParallelGraph = parallel.Graph
	// Race is one detected race condition.
	Race = race.Race
	// BlockConfig tunes e-block construction (§5.4).
	BlockConfig = eblock.Config
	// Log is the per-process execution log.
	Log = logging.ProgramLog
	// Emulator re-executes e-block intervals of one process.
	Emulator = emulation.Emulator
	// WhatIfResult compares an interval's original and modified replays.
	WhatIfResult = replay.WhatIfResult
)

// Options configures an execution.
type Options struct {
	// Seed selects the scheduler interleaving; 0 is strict round-robin.
	Seed int64
	// Quantum is the maximum instructions per scheduling slice (default 40).
	Quantum int
	// MaxSteps bounds total instructions (default 200M).
	MaxSteps int64
	// Output receives the program's print output; nil discards it.
	Output io.Writer
	// BreakAt halts every process the first time the given statement (see
	// the program database / `ppd dump` for statement numbers) is about to
	// execute, leaving a debuggable stopped state.
	BreakAt int
}

// Program is a compiled MPL program with its preparatory-phase artifacts.
type Program struct {
	art *compile.Artifacts
}

// Compile runs the preparatory phase with the default e-block configuration.
func Compile(filename, src string) (*Program, error) {
	return CompileWithConfig(filename, src, eblock.DefaultConfig())
}

// CompileWithConfig compiles with an explicit e-block configuration.
func CompileWithConfig(filename, src string, cfg BlockConfig) (*Program, error) {
	art, err := compile.Compile(source.NewFile(filename, src), cfg)
	if err != nil {
		return nil, err
	}
	return &Program{art: art}, nil
}

// Artifacts exposes the preparatory-phase outputs for advanced use (static
// PDG, program database, e-block plan, bytecode).
func (p *Program) Artifacts() *compile.Artifacts { return p.art }

// Run executes without instrumentation actions and returns the run error
// (nil, a runtime failure, or a deadlock).
func (p *Program) Run(opts Options) error {
	v := vm.New(p.art.Prog, vmOptions(opts, vm.ModeRun))
	return v.Run()
}

// RunLogged executes the paper's execution phase, producing the log the
// debugging phase consumes. The returned Execution is valid even when the
// program failed or deadlocked — that is precisely when it is interesting.
func (p *Program) RunLogged(opts Options) (*Execution, error) {
	v := vm.New(p.art.Prog, vmOptions(opts, vm.ModeLog))
	runErr := v.Run()
	e := &Execution{Program: p, vm: v}
	if runErr != nil && v.Failure == nil && !v.Deadlock {
		return nil, runErr // infrastructure error (budget exhausted, ...)
	}
	return e, nil
}

func vmOptions(opts Options, mode vm.Mode) vm.Options {
	return vm.Options{
		Mode:     mode,
		Seed:     opts.Seed,
		Quantum:  opts.Quantum,
		MaxSteps: opts.MaxSteps,
		Output:   opts.Output,
		BreakAt:  ast.StmtID(opts.BreakAt),
	}
}

// Execution is one logged run of a Program.
type Execution struct {
	Program *Program
	vm      *vm.VM

	ctl *controller.Controller
}

// Failed returns the runtime failure that halted the program, or nil.
func (e *Execution) Failed() error {
	if e.vm.Failure == nil {
		return nil
	}
	return e.vm.Failure
}

// Deadlocked reports whether the execution ended with blocked processes.
func (e *Execution) Deadlocked() bool { return e.vm.Deadlock }

// AtBreakpoint reports whether the execution halted at Options.BreakAt.
func (e *Execution) AtBreakpoint() bool { return e.vm.BreakHit }

// Log returns the per-process execution log.
func (e *Execution) Log() *Log { return e.vm.Log }

// WriteLog persists the log in PPD's binary format (one artifact for the
// whole execution; the books inside remain per-process, §5.6).
func (e *Execution) WriteLog(w io.Writer) error { return e.vm.Log.Write(w) }

// ReadLog loads a log persisted by WriteLog and binds it to the program as
// a debuggable execution (failure/deadlock state is not persisted).
func (p *Program) ReadLog(r io.Reader) (*Execution, error) {
	pl, err := logging.Read(r)
	if err != nil {
		return nil, err
	}
	return &Execution{
		Program: p,
		vm:      vm.New(p.art.Prog, vm.Options{Mode: vm.ModeLog}),
		ctl:     controller.New(p.art, pl, nil, false),
	}, nil
}

// Controller returns the debugging-phase coordinator (cached).
func (e *Execution) Controller() *Controller {
	if e.ctl == nil {
		e.ctl = controller.FromRun(e.Program.art, e.vm)
	}
	return e.ctl
}

// Debugger starts an interactive flowback session over this execution.
func (e *Execution) Debugger() (*Session, error) {
	return debugger.New(e.Controller())
}

// Races runs race detection over the execution instance.
func (e *Execution) Races() []*Race { return race.Indexed(e.Controller().Parallel()) }

// RaceReport renders the detected races with variable names.
func (e *Execution) RaceReport() string { return e.Controller().RaceReport() }

// WhatIf re-executes the e-block interval at record prelogIdx of process
// pid with the named global overridden, and reports what changed (§5.7).
func (e *Execution) WhatIf(pid, prelogIdx int, global string, value int64) (*WhatIfResult, error) {
	sym := e.Program.art.Info.GlobalByName(global)
	if sym == nil {
		return nil, fmt.Errorf("ppd: no global %q", global)
	}
	return replay.WhatIf(e.Program.art.Prog, e.vm.Log.Books[pid], prelogIdx,
		[]replay.Override{{Slot: -1, Global: sym.GlobalID, Value: value}})
}
