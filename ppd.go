// Package ppd is the public API of the Parallel Program Debugger, a
// reproduction of Miller & Choi, "A Mechanism for Efficient Debugging of
// Parallel Programs" (PLDI 1988).
//
// PPD debugs MPL programs (a small C-like parallel language with processes,
// semaphores, and message channels) in the paper's three phases:
//
//  1. Preparatory — Compile produces the instrumented object code, the
//     static program dependence graph, the e-block plan, and the program
//     database.
//  2. Execution — Program.RunLogged executes on the simulated shared-memory
//     multiprocessor while generating the (small) incremental-tracing log:
//     prelogs, postlogs, shared prelogs, and synchronization records.
//  3. Debugging — Execution.Debugger answers flowback queries by emulating
//     individual e-block intervals on demand; Execution.Races applies the
//     happened-before race detector (Definitions 6.1–6.4).
//
// Quick start — a Session bundles all three phases behind one handle:
//
//	sess, err := ppd.OpenSession("demo.mpl", src, ppd.Options{})
//	defer sess.Close()
//	if sess.Failed() != nil {
//	    report, _ := sess.RaceReport()
//	    fmt.Print(report)
//	}
//
// The lower-level Program/Execution surface remains available for callers
// that need to separate the phases (compile once, run many seeds); the
// long-running entry points all have Context variants that honor
// cancellation. `ppd serve` (internal/server) exposes the session API as a
// multi-session HTTP/JSON daemon.
//
// The examples/ directory contains runnable walkthroughs, and cmd/ppd is a
// complete CLI over the same API.
package ppd

import (
	"context"
	"fmt"
	"io"
	"os"

	"ppd/internal/analysis"
	"ppd/internal/ast"
	"ppd/internal/bytecode"
	"ppd/internal/compile"
	"ppd/internal/controller"
	"ppd/internal/debugger"
	"ppd/internal/dynpdg"
	"ppd/internal/eblock"
	"ppd/internal/emulation"
	"ppd/internal/logging"
	"ppd/internal/obs"
	"ppd/internal/parallel"
	"ppd/internal/race"
	"ppd/internal/replay"
	"ppd/internal/source"
	"ppd/internal/stream"
	"ppd/internal/vm"
)

// Re-exported debugging-phase types. These are aliases so values returned
// by this package interoperate with the subsystem packages directly.
type (
	// Controller is the PPD Controller: the debugging-phase coordinator.
	Controller = controller.Controller
	// InteractiveSession is an interactive textual debugging session
	// (the `ppd debug` REPL). The name Session now belongs to the
	// first-class debugging-session object — see OpenSession.
	InteractiveSession = debugger.Session
	// DynamicGraph is a dynamic program dependence graph.
	DynamicGraph = dynpdg.Graph
	// ParallelGraph is the parallel dynamic graph of one execution.
	ParallelGraph = parallel.Graph
	// Race is one detected race condition.
	Race = race.Race
	// BlockConfig tunes e-block construction (§5.4).
	BlockConfig = eblock.Config
	// Log is the per-process execution log.
	Log = logging.ProgramLog
	// Emulator re-executes e-block intervals of one process.
	Emulator = emulation.Emulator
	// WhatIfResult compares an interval's original and modified replays.
	WhatIfResult = replay.WhatIfResult
	// StateSnapshot is a restored global state as of a record boundary
	// (Session.ReplayTo, §5.7 postlog accumulation).
	StateSnapshot = replay.Snapshot
	// Stats is a snapshot of PPD's observability counters and timers,
	// renderable as text (Text) or JSON (JSON). See Execution.Stats and
	// Program.CompileStats.
	Stats = obs.Snapshot
	// TimerStat is the read-out of one duration histogram inside Stats.
	TimerStat = obs.TimerStat
	// VetResult is the outcome of the static-analysis passes (`ppd vet`).
	VetResult = analysis.Result
	// Diagnostic is one static-analysis finding with its source position.
	Diagnostic = analysis.Diagnostic
	// OpStats is the dispatch histogram collected by Program.ProfileOps:
	// per-opcode and opcode-pair execution counts plus superinstruction
	// hits (`ppd stats -ops`). It feeds the profile-guided fusion table.
	OpStats = obs.OpStats
	// RaceEvent is one race as the online pipeline reports it, while the
	// program is still running (Options.OnRace).
	RaceEvent = stream.RaceEvent
	// StreamResult is the online pipeline's final output: the canonical
	// race set plus the frontier counters (Execution.OnlineResult).
	StreamResult = stream.Result
)

// Options configures an execution.
type Options struct {
	// Seed selects the scheduler interleaving; 0 is strict round-robin.
	Seed int64
	// Quantum is the maximum instructions per scheduling slice (default 40).
	Quantum int
	// MaxSteps bounds total instructions (default 200M).
	MaxSteps int64
	// Output receives the program's print output; nil discards it.
	Output io.Writer
	// BreakAt halts every process the first time the given statement (see
	// the program database / `ppd dump` for statement numbers) is about to
	// execute, leaving a debuggable stopped state.
	BreakAt int
	// Workers bounds the debugging phase's worker-pool fan-out (race
	// detection, emulator construction, prefetch). 0 uses GOMAXPROCS.
	Workers int
	// CacheBound caps the controller's interval LRU cache: 0 means the
	// default bound, < 0 removes the bound.
	CacheBound int
	// Trace, when non-nil, streams phase-scope events (the execution run,
	// debugging-phase builds and queries) as one timestamped line per
	// scope. It does not affect the collected Stats.
	Trace io.Writer
	// CacheDir enables the persistent artifact cache for CompileOpts:
	// preparatory-phase outputs are stored there keyed by a content hash of
	// the source and configuration, and a later compile of identical input
	// skips the whole pipeline. Empty falls back to the PPD_CACHE_DIR
	// environment variable; empty both ways disables caching.
	CacheDir string
	// NoFusion disables the bytecode fusion pass for CompileOpts: the
	// program runs on plain single-opcode dispatch. The observable
	// behavior — output, logs, races, vet — is identical either way; the
	// switch exists for measurement (`ppdbench dispatch`) and as an
	// escape hatch. Fused and unfused compiles never share a persistent
	// cache entry (the fusion fingerprint is part of the cache key).
	NoFusion bool
	// LogSink, when non-nil, streams the execution log during RunLogged:
	// each record is encoded in PPD's binary format as it is produced and
	// its memory recycled, so a long run retains compact encoded bytes
	// instead of record structures. At run end the sink holds exactly the
	// bytes WriteLog would have produced. A streamed Execution keeps no
	// in-memory records — load the sink's bytes back with Program.ReadLog
	// before starting the debugging phase.
	LogSink io.Writer

	// Monitor runs the online analysis pipeline during RunLogged: the
	// record stream is teed into an incremental graph builder and a
	// frontier race detector that work concurrently with the run, with
	// memory bounded by the synchronization frontier instead of the run
	// length. The final race set (Execution.OnlineResult) is
	// byte-identical to what Execution.Races computes after the fact.
	// Implied by StopAtFirstRace and by a non-nil OnRace.
	Monitor bool
	// StopAtFirstRace cancels the run the moment the online detector
	// classifies a race — monitoring a long execution costs only
	// time-to-first-race. The returned Execution is valid (its partial
	// log is well formed, exit records flushed) and reports
	// StoppedAtRace.
	StopAtFirstRace bool
	// OnRace fires once per race as it is detected, while the program is
	// still running. It runs on the pipeline goroutine; implementations
	// should return quickly.
	OnRace func(RaceEvent)
	// StreamBatch is the tee's record batch size for the pipeline
	// handoff; 0 selects the default (64), 1 minimizes time-to-first-race.
	StreamBatch int
}

// optionErr builds the one validation-error shape every branch of validate
// uses: the sentinel (so errors.Is(err, ErrInvalidOptions) holds), the
// offending field's name, its value, and the rule it broke.
func optionErr(field string, value any, rule string) error {
	return fmt.Errorf("%w: Options.%s = %v (%s)", ErrInvalidOptions, field, value, rule)
}

// validate rejects option values that would otherwise be silently coerced
// into defaults. Zero always means "use the default". Every rejection
// wraps ErrInvalidOptions and names the offending field and value.
func (o Options) validate(art *compile.Artifacts) error {
	if o.Quantum < 0 {
		return optionErr("Quantum", o.Quantum, "must be >= 0; 0 selects the default")
	}
	if o.MaxSteps < 0 {
		return optionErr("MaxSteps", o.MaxSteps, "must be >= 0; 0 selects the default")
	}
	if o.Workers < 0 {
		return optionErr("Workers", o.Workers, "must be >= 0; 0 uses GOMAXPROCS")
	}
	if o.BreakAt < 0 {
		return optionErr("BreakAt", o.BreakAt, "must be >= 0; 0 disables the breakpoint")
	}
	if o.StreamBatch < 0 {
		return optionErr("StreamBatch", o.StreamBatch, "must be >= 0; 0 selects the default")
	}
	if o.BreakAt > 0 {
		// Statement numbers live in the program database; a cache-loaded
		// artifact rebuilds it here on first need.
		if err := art.Hydrate(); err != nil {
			return err
		}
		if art.DB.Stmt(ast.StmtID(o.BreakAt)) == nil {
			return optionErr("BreakAt", o.BreakAt,
				fmt.Sprintf("no such statement s%d; see `ppd dump` for statement numbers", o.BreakAt))
		}
	}
	return nil
}

// Program is a compiled MPL program with its preparatory-phase artifacts.
type Program struct {
	art  *compile.Artifacts
	sink *obs.Sink // preparatory-phase metrics (compile.*)
}

// Compile runs the preparatory phase with the default e-block configuration.
//
// Deprecated: Compile predates the session API. New code should use
// OpenSession, which bundles compilation (through the shared artifact
// cache), the logged run, and the debugging-phase controller behind one
// closable handle; use CompileOpts when the phases must be driven
// separately.
func Compile(filename, src string) (*Program, error) {
	return CompileWithConfig(filename, src, eblock.DefaultConfig())
}

// CompileWithConfig compiles with an explicit e-block configuration.
func CompileWithConfig(filename, src string, cfg BlockConfig) (*Program, error) {
	return CompileOpts(filename, src, cfg, Options{})
}

// CompileOpts compiles with an explicit configuration and the
// preparatory-phase knobs from opts: Workers bounds the pipeline's
// per-function fan-out, and CacheDir (or the PPD_CACHE_DIR environment
// variable) enables the persistent artifact cache. A cache hit returns a
// Program whose semantic layers rebuild lazily on the first debugging-phase
// query; Run, RunLogged, and Vet work immediately off the cached bytecode.
func CompileOpts(filename, src string, cfg BlockConfig, opts Options) (*Program, error) {
	sink := obs.New()
	tab := bytecode.DefaultFusionTable()
	if opts.NoFusion {
		tab = nil
	}
	art, err := compile.CompileCachedFused(source.NewFile(filename, src), cfg, cacheDir(opts), opts.Workers, tab, sink)
	if err != nil {
		return nil, &compileErr{err}
	}
	return &Program{art: art, sink: sink}, nil
}

// cacheDir resolves the artifact-cache directory: the explicit option wins,
// then the PPD_CACHE_DIR environment variable, then no caching.
func cacheDir(opts Options) string {
	if opts.CacheDir != "" {
		return opts.CacheDir
	}
	return os.Getenv("PPD_CACHE_DIR")
}

// CompileStats returns the preparatory phase's metrics: per-pass timings and
// the sizes of the static artifacts (functions, instructions, e-blocks,
// PDG units and edges, shared-prelog sites).
func (p *Program) CompileStats() *Stats { return p.sink.Snapshot() }

// Artifacts exposes the preparatory-phase outputs for advanced use (static
// PDG, program database, e-block plan, bytecode).
func (p *Program) Artifacts() *compile.Artifacts { return p.art }

// Vet runs the static-analysis passes (race candidates, synchronization
// lints, uninitialized shared reads, dead stores) over the compiled
// artifacts and persists the result in the program database: repeated
// calls return the same *VetResult without re-analysis. The debugging
// phase reuses the result's conflict matrix to prune race detection.
func (p *Program) Vet() *VetResult {
	return p.art.Vet(p.sink)
}

// Run executes without instrumentation actions and returns the run error
// (nil, a runtime failure, or a deadlock). It is RunContext without
// cancellation.
func (p *Program) Run(opts Options) error {
	return p.RunContext(context.Background(), opts)
}

// RunContext is Run honoring ctx: the scheduler checks for cancellation
// once per scheduling slice, and a cancelled run returns ctx's error.
func (p *Program) RunContext(ctx context.Context, opts Options) error {
	if err := opts.validate(p.art); err != nil {
		return err
	}
	v := vm.New(p.art.Prog, vmOptions(ctx, opts, vm.ModeRun, nil))
	return v.Run()
}

// ProfileOps executes without instrumentation actions while collecting the
// dispatch histogram: how often each opcode ran, which opcode pairs were
// dynamically adjacent, and how many times each superinstruction fired.
// The profile is what the fusion table is regenerated from; `ppd stats
// -ops` renders it. Run errors are reported alongside the (still valid)
// partial profile.
func (p *Program) ProfileOps(opts Options) (*OpStats, error) {
	return p.ProfileOpsContext(context.Background(), opts)
}

// ProfileOpsContext is ProfileOps honoring ctx; a cancelled run returns
// the partial profile collected so far alongside ctx's error.
func (p *Program) ProfileOpsContext(ctx context.Context, opts Options) (*OpStats, error) {
	if err := opts.validate(p.art); err != nil {
		return nil, err
	}
	st := obs.NewOpStats(int(bytecode.NumOps), int(bytecode.NumSuperOps))
	vo := vmOptions(ctx, opts, vm.ModeRun, nil)
	vo.OpProfile = st
	v := vm.New(p.art.Prog, vo)
	return st, v.Run()
}

// RunLogged executes the paper's execution phase, producing the log the
// debugging phase consumes. The returned Execution is valid even when the
// program failed or deadlocked — that is precisely when it is interesting.
// With Options.LogSink set, the log is streamed to the sink instead of
// retained; a sink write failure on a run that otherwise succeeded is
// returned as the error.
//
// Deprecated: RunLogged predates the session API. New code should use
// OpenSession (one handle over all three phases) or, when the phases must
// be driven separately, RunLoggedContext, which also honors cancellation.
func (p *Program) RunLogged(opts Options) (*Execution, error) {
	return p.RunLoggedContext(context.Background(), opts)
}

// RunLoggedContext is the execution phase honoring ctx: the scheduler
// checks for cancellation once per scheduling slice, and a cancelled run
// returns ctx's error (no Execution — cancellation is an infrastructure
// outcome, not a program one).
func (p *Program) RunLoggedContext(ctx context.Context, opts Options) (*Execution, error) {
	if err := opts.validate(p.art); err != nil {
		return nil, err
	}
	sink := obs.New()
	if opts.Trace != nil {
		sink.SetTrace(opts.Trace)
	}
	monitor := opts.Monitor || opts.StopAtFirstRace || opts.OnRace != nil
	runCtx := ctx
	var (
		pipe   *stream.Pipeline
		tee    *stream.Tee
		cancel context.CancelFunc // set only for the first-race self-abort
	)
	if monitor {
		// The online detector reuses the batch oracle's inputs: the static
		// conflict mask (memoized by Vet) prunes buckets before they are
		// materialized, and the variable names make the online report
		// byte-identical to the batch one.
		vet := p.Vet()
		names := make([]string, len(p.art.Prog.Globals))
		for i, g := range p.art.Prog.Globals {
			names[i] = g.Name
		}
		if opts.StopAtFirstRace {
			if runCtx == nil {
				runCtx = context.Background()
			}
			runCtx, cancel = context.WithCancel(runCtx)
			defer cancel()
		}
		userCB, selfCancel := opts.OnRace, cancel
		pipe = stream.New(stream.Config{
			NShared:  len(p.art.Prog.Globals),
			Mask:     vet.Conflicts.Mask(),
			VarNames: names,
			Sink:     sink,
			OnRace: func(ev RaceEvent) {
				if userCB != nil {
					userCB(ev)
				}
				if selfCancel != nil {
					selfCancel()
				}
			},
		})
		batch := opts.StreamBatch
		if batch == 0 && opts.StopAtFirstRace {
			// An abort is only as prompt as the tee's handoff; per-record
			// feeding minimizes the distance between a race happening and
			// the run being cancelled.
			batch = 1
		}
		tee = stream.NewTee(pipe, batch)
	}
	vo := vmOptions(runCtx, opts, vm.ModeLog, sink)
	if tee != nil {
		vo.Tap = tee.Tap
	}
	v := vm.New(p.art.Prog, vo)
	runErr := v.Run()
	var online *StreamResult
	if tee != nil {
		tee.Close() // drain the pipeline before reading its result
		online = pipe.Finish()
	}
	e := &Execution{Program: p, vm: v, opts: opts, sink: sink, online: online}
	if runErr != nil && v.Failure == nil && !v.Deadlock {
		// The first-race self-abort shows up as a cancelled run, but it is
		// a *successful* monitored outcome: the caller's own context is
		// still live and the pipeline holds the race that triggered it.
		// Even a cancelled run flushed its exit records, so the partial
		// log is well formed and the online result equals the batch
		// detector over that partial log.
		if cancel != nil && (ctx == nil || ctx.Err() == nil) && online != nil && len(online.Races) > 0 {
			e.stoppedAtRace = true
			return e, nil
		}
		return nil, runErr // infrastructure error (cancelled, budget exhausted, ...)
	}
	return e, nil
}

func vmOptions(ctx context.Context, opts Options, mode vm.Mode, sink *obs.Sink) vm.Options {
	vo := vm.Options{
		Mode:     mode,
		Seed:     opts.Seed,
		Quantum:  opts.Quantum,
		MaxSteps: opts.MaxSteps,
		Output:   opts.Output,
		BreakAt:  ast.StmtID(opts.BreakAt),
		LogSink:  opts.LogSink,
		Obs:      sink,
	}
	// Only a cancellable context buys the per-slice check; Background and
	// friends (Done() == nil) keep the scheduler loop untouched.
	if ctx != nil && ctx.Done() != nil {
		vo.Ctx = ctx
	}
	return vo
}

// Execution is one logged run of a Program.
type Execution struct {
	Program *Program
	vm      *vm.VM
	opts    Options
	sink    *obs.Sink // execution- and debugging-phase metrics

	online        *StreamResult // set when the run was monitored
	stoppedAtRace bool

	ctl *controller.Controller
}

// Monitored reports whether the run carried the online analysis pipeline
// (Options.Monitor, StopAtFirstRace, or OnRace).
func (e *Execution) Monitored() bool { return e.online != nil }

// OnlineResult returns the online pipeline's final output — the canonical
// race set plus the frontier counters — or nil when the run was not
// monitored. The race set is byte-identical (race.Report) to what the
// batch detector computes over the same (possibly partial) log.
func (e *Execution) OnlineResult() *StreamResult { return e.online }

// OnlineRaces returns the online race set, or nil when not monitored.
func (e *Execution) OnlineRaces() []*Race {
	if e.online == nil {
		return nil
	}
	return e.online.Races
}

// OnlineRaceReport renders the online race set with variable names — the
// same format as RaceReport, but from the pipeline's result instead of a
// batch pass over the log (and without instantiating the debugging-phase
// controller). Empty when the run was not monitored.
func (e *Execution) OnlineRaceReport() string {
	if e.online == nil {
		return ""
	}
	globals := e.Program.art.Prog.Globals
	return race.Report(e.online.Races, func(gid int) string {
		if gid >= 0 && gid < len(globals) {
			return globals[gid].Name
		}
		return fmt.Sprintf("g%d", gid)
	})
}

// StoppedAtRace reports whether Options.StopAtFirstRace halted the run
// early: the execution is a valid partial run whose log ends at the
// abort, and OnlineRaces holds the race(s) that triggered it.
func (e *Execution) StoppedAtRace() bool { return e.stoppedAtRace }

// Failed returns the runtime failure that halted the program, or nil.
func (e *Execution) Failed() error {
	if e.vm.Failure == nil {
		return nil
	}
	return e.vm.Failure
}

// Deadlocked reports whether the execution ended with blocked processes.
func (e *Execution) Deadlocked() bool { return e.vm.Deadlock }

// AtBreakpoint reports whether the execution halted at Options.BreakAt.
func (e *Execution) AtBreakpoint() bool { return e.vm.BreakHit }

// Log returns the per-process execution log.
func (e *Execution) Log() *Log { return e.vm.Log }

// WriteLog persists the log in PPD's binary format (one artifact for the
// whole execution; the books inside remain per-process, §5.6). It errors on
// a streamed execution: the records already went to Options.LogSink, which
// holds these exact bytes.
func (e *Execution) WriteLog(w io.Writer) error { return e.vm.Log.Write(w) }

// ReadLog loads a log persisted by WriteLog and binds it to the program as
// a debuggable execution (failure/deadlock state is not persisted). The
// options configure the debugging phase only — execution already happened.
func (p *Program) ReadLog(r io.Reader, opts Options) (*Execution, error) {
	if err := opts.validate(p.art); err != nil {
		return nil, err
	}
	pl, err := logging.Read(r)
	if err != nil {
		return nil, err
	}
	sink := obs.New()
	if opts.Trace != nil {
		sink.SetTrace(opts.Trace)
	}
	if err := p.art.Hydrate(); err != nil {
		return nil, err
	}
	// The loaded log stands in for a run: give the placeholder VM the same
	// log so Log(), WriteLog, and Stats see the loaded records.
	v := vm.New(p.art.Prog, vm.Options{Mode: vm.ModeLog})
	v.Log = pl
	return &Execution{
		Program: p,
		vm:      v,
		opts:    opts,
		sink:    sink,
		ctl: controller.NewWithConfig(p.art, pl, controller.Config{
			Workers:    opts.Workers,
			CacheBound: opts.CacheBound,
			Obs:        sink,
		}),
	}, nil
}

// Controller returns the debugging-phase coordinator (cached).
func (e *Execution) Controller() *Controller {
	if e.ctl == nil {
		if err := e.Program.art.Hydrate(); err != nil {
			// A cached artifact rehydrates from the exact source that
			// compiled when the entry was stored, so this cannot fail;
			// failing loudly beats a nil-database panic downstream.
			panic(fmt.Sprintf("ppd: hydrate artifacts: %v", err))
		}
		e.ctl = controller.FromRunConfig(e.Program.art, e.vm, controller.Config{
			Workers:    e.opts.Workers,
			CacheBound: e.opts.CacheBound,
			Obs:        e.sink,
		})
	}
	return e.ctl
}

// Debugger starts an interactive flowback session over this execution.
func (e *Execution) Debugger() (*InteractiveSession, error) {
	return debugger.New(e.Controller())
}

// Races runs race detection over the execution instance. The result is
// memoized on the controller: the parallel graph is immutable post-run, so
// repeated calls perform no re-detection.
func (e *Execution) Races() []*Race { return e.Controller().Races() }

// Stats returns the execution's observability snapshot, spanning all three
// phases: compile.* (per-pass timings, static artifact sizes), exec.*
// (steps, context switches, per-kind log records and bytes), and — after
// debugging queries such as Races or Debugger — debug.*, sched.*, and
// race.* (cache hits/misses, emulation time, pool utilization, pairs
// checked). Each call takes a fresh snapshot; the log-size gauges are
// derived from the retained log, so repeated calls never double-count.
func (e *Execution) Stats() *Stats {
	snap := e.Program.sink.Snapshot()
	snap.Merge(e.sink.Snapshot())
	st := e.vm.Log.Stats()
	snap.Counters["exec.log.records"] = int64(st.TotalRecords())
	snap.Counters["exec.log.bytes"] = int64(st.TotalBytes())
	for k := 0; k < logging.NumKinds; k++ {
		if st.Records[k] == 0 {
			continue
		}
		name := logging.Kind(k).String()
		snap.Counters["exec.log.records."+name] = int64(st.Records[k])
		snap.Counters["exec.log.bytes."+name] = int64(st.Bytes[k])
	}
	return snap
}

// RaceReport renders the detected races with variable names.
func (e *Execution) RaceReport() string { return e.Controller().RaceReport() }

// WhatIf re-executes the e-block interval at record prelogIdx of process
// pid with the named global overridden, and reports what changed (§5.7).
func (e *Execution) WhatIf(pid, prelogIdx int, global string, value int64) (*WhatIfResult, error) {
	if err := e.Program.art.Hydrate(); err != nil {
		return nil, err
	}
	sym := e.Program.art.Info.GlobalByName(global)
	if sym == nil {
		return nil, fmt.Errorf("ppd: no global %q", global)
	}
	return replay.WhatIf(e.Program.art.Prog, e.vm.Log.Books[pid], prelogIdx,
		[]replay.Override{{Slot: -1, Global: sym.GlobalID, Value: value}})
}
