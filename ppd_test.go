package ppd

import (
	"bytes"
	"strings"
	"testing"
)

const facadeCrash = `
var g = 1;
func f(a int) int {
	g = g + a;
	return g * 2;
}
func main() {
	var r = f(20) / (g - 21);
	print(r);
}
`

func TestFacadeCompileRun(t *testing.T) {
	prog, err := Compile("ok.mpl", `func main() { print(6 * 7); }`)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := prog.Run(Options{Output: &out}); err != nil {
		t.Fatal(err)
	}
	if out.String() != "42\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestFacadeCompileError(t *testing.T) {
	if _, err := Compile("bad.mpl", `func main() { x = ; }`); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestFacadeDebugFlow(t *testing.T) {
	prog, err := Compile("crash.mpl", facadeCrash)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := prog.RunLogged(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Failed() == nil {
		t.Fatal("expected a failure")
	}
	if !strings.Contains(exec.Failed().Error(), "division by zero") {
		t.Errorf("failure = %v", exec.Failed())
	}
	sess, err := exec.Debugger()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sess.Exec(&out, "graph 3")
	if !strings.Contains(out.String(), "data") {
		t.Errorf("graph = %s", out.String())
	}
}

func TestFacadeRaces(t *testing.T) {
	prog, err := Compile("racy.mpl", `
shared counter;
sem done = 0;
func w() { counter = counter + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); }`)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := prog.RunLogged(Options{Quantum: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Races()) == 0 {
		t.Error("expected races")
	}
	if !strings.Contains(exec.RaceReport(), "counter") {
		t.Errorf("report = %s", exec.RaceReport())
	}
}

func TestFacadeWhatIf(t *testing.T) {
	prog, err := Compile("crash.mpl", facadeCrash)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := prog.RunLogged(Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := exec.Controller().FocusInterval(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.WhatIf(0, idx, "g", 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Original.Err == nil {
		t.Error("original replay should reproduce the failure")
	}
	if res.Modified.Err != nil {
		t.Errorf("modified replay should succeed, got %v", res.Modified.Err)
	}
	if _, err := exec.WhatIf(0, idx, "nosuch", 1); err == nil {
		t.Error("expected error for unknown global")
	}
}

func TestFacadeLogRoundTrip(t *testing.T) {
	prog, err := Compile("rt.mpl", `
var g;
func f() { g = g + 1; }
func main() { f(); f(); print(g); }`)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := prog.RunLogged(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := exec.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := prog.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded execution must be fully debuggable: emulate main and find
	// both f sub-graph instances.
	g, _, err := loaded.Controller().CurrentGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	subs := 0
	for _, n := range g.Nodes {
		if n.Label == "f" {
			subs++
		}
	}
	if subs != 2 {
		t.Errorf("sub-graph nodes after round trip = %d, want 2", subs)
	}
}

func TestFacadeBreakpoint(t *testing.T) {
	prog, err := Compile("bp.mpl", `
var g;
func main() {
	g = 1;
	g = 2;
	print(g);
}`)
	if err != nil {
		t.Fatal(err)
	}
	// Statement 2 is "g = 2".
	exec, err := prog.RunLogged(Options{BreakAt: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !exec.AtBreakpoint() {
		t.Fatal("breakpoint not hit")
	}
	if exec.Failed() != nil || exec.Deadlocked() {
		t.Error("breakpoint halt misclassified")
	}
	// g holds the value from before the halted statement.
	c := exec.Controller()
	if c == nil {
		t.Fatal("no controller")
	}
}
