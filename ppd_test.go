package ppd

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ppd/internal/controller"
	"ppd/internal/logging"
)

const facadeCrash = `
var g = 1;
func f(a int) int {
	g = g + a;
	return g * 2;
}
func main() {
	var r = f(20) / (g - 21);
	print(r);
}
`

func TestFacadeCompileRun(t *testing.T) {
	prog, err := Compile("ok.mpl", `func main() { print(6 * 7); }`)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := prog.Run(Options{Output: &out}); err != nil {
		t.Fatal(err)
	}
	if out.String() != "42\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestFacadeCompileError(t *testing.T) {
	if _, err := Compile("bad.mpl", `func main() { x = ; }`); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestFacadeDebugFlow(t *testing.T) {
	prog, err := Compile("crash.mpl", facadeCrash)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := prog.RunLogged(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Failed() == nil {
		t.Fatal("expected a failure")
	}
	if !strings.Contains(exec.Failed().Error(), "division by zero") {
		t.Errorf("failure = %v", exec.Failed())
	}
	sess, err := exec.Debugger()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sess.Exec(&out, "graph 3")
	if !strings.Contains(out.String(), "data") {
		t.Errorf("graph = %s", out.String())
	}
}

func TestFacadeRaces(t *testing.T) {
	prog, err := Compile("racy.mpl", `
shared counter;
sem done = 0;
func w() { counter = counter + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); }`)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := prog.RunLogged(Options{Quantum: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Races()) == 0 {
		t.Error("expected races")
	}
	if !strings.Contains(exec.RaceReport(), "counter") {
		t.Errorf("report = %s", exec.RaceReport())
	}
}

func TestFacadeWhatIf(t *testing.T) {
	prog, err := Compile("crash.mpl", facadeCrash)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := prog.RunLogged(Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := exec.Controller().FocusInterval(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.WhatIf(0, idx, "g", 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Original.Err == nil {
		t.Error("original replay should reproduce the failure")
	}
	if res.Modified.Err != nil {
		t.Errorf("modified replay should succeed, got %v", res.Modified.Err)
	}
	if _, err := exec.WhatIf(0, idx, "nosuch", 1); err == nil {
		t.Error("expected error for unknown global")
	}
}

func TestFacadeLogRoundTrip(t *testing.T) {
	prog, err := Compile("rt.mpl", `
var g;
func f() { g = g + 1; }
func main() { f(); f(); print(g); }`)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := prog.RunLogged(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := exec.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := prog.ReadLog(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The loaded execution must be fully debuggable: emulate main and find
	// both f sub-graph instances.
	g, _, err := loaded.Controller().CurrentGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	subs := 0
	for _, n := range g.Nodes {
		if n.Label == "f" {
			subs++
		}
	}
	if subs != 2 {
		t.Errorf("sub-graph nodes after round trip = %d, want 2", subs)
	}
}

func TestFacadeBreakpoint(t *testing.T) {
	prog, err := Compile("bp.mpl", `
var g;
func main() {
	g = 1;
	g = 2;
	print(g);
}`)
	if err != nil {
		t.Fatal(err)
	}
	// Statement 2 is "g = 2".
	exec, err := prog.RunLogged(Options{BreakAt: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !exec.AtBreakpoint() {
		t.Fatal("breakpoint not hit")
	}
	if exec.Failed() != nil || exec.Deadlocked() {
		t.Error("breakpoint halt misclassified")
	}
	// g holds the value from before the halted statement.
	c := exec.Controller()
	if c == nil {
		t.Fatal("no controller")
	}
}

// TestOptionsValidation pins the validation contract over every invalid
// branch: the error wraps ErrInvalidOptions (errors.Is), and the message
// names both the offending field and the offending value.
func TestOptionsValidation(t *testing.T) {
	prog, err := Compile("v.mpl", `func main() { print(1); }`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		opts  Options
		field string
		value string
	}{
		{"negative quantum", Options{Quantum: -1}, "Quantum", "-1"},
		{"negative max steps", Options{MaxSteps: -5}, "MaxSteps", "-5"},
		{"negative workers", Options{Workers: -2}, "Workers", "-2"},
		{"negative breakpoint", Options{BreakAt: -3}, "BreakAt", "-3"},
		{"unknown statement breakpoint", Options{BreakAt: 9999}, "BreakAt", "9999"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			check := func(api string, err error) {
				if err == nil {
					t.Fatalf("%s(%+v): no error", api, tc.opts)
				}
				if !errors.Is(err, ErrInvalidOptions) {
					t.Errorf("%s error %v does not wrap ErrInvalidOptions", api, err)
				}
				msg := err.Error()
				if !strings.Contains(msg, "Options."+tc.field) {
					t.Errorf("%s error %q does not name field %s", api, msg, tc.field)
				}
				if !strings.Contains(msg, tc.value) {
					t.Errorf("%s error %q does not include value %s", api, msg, tc.value)
				}
			}
			_, rlErr := prog.RunLogged(tc.opts)
			check("RunLogged", rlErr)
			check("Run", prog.Run(tc.opts))
			_, poErr := prog.ProfileOps(tc.opts)
			check("ProfileOps", poErr)
			_, osErr := OpenSession("v.mpl", `func main() { print(1); }`, tc.opts)
			check("OpenSession", osErr)
		})
	}
	// Zero values still select defaults.
	if _, err := prog.RunLogged(Options{}); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
	// The unknown-statement message must point at `ppd dump`.
	_, err = prog.RunLogged(Options{BreakAt: 9999})
	if err == nil || !strings.Contains(err.Error(), "no such statement") {
		t.Errorf("BreakAt=9999 error = %v, want 'no such statement'", err)
	}
}

// TestFacadeRacesMemoized asserts the satellite contract: repeated Races()
// calls perform zero re-detection. The observable is race.runs — the
// detector increments it once per actual scan.
func TestFacadeRacesMemoized(t *testing.T) {
	prog, err := Compile("racy.mpl", `
shared counter;
sem done = 0;
func w() { counter = counter + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); }`)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := prog.RunLogged(Options{Quantum: 1})
	if err != nil {
		t.Fatal(err)
	}
	r1 := exec.Races()
	r2 := exec.Races()
	r3 := exec.Races()
	if len(r1) == 0 {
		t.Fatal("expected races")
	}
	if &r1[0] != &r2[0] || &r2[0] != &r3[0] {
		t.Error("repeated Races() returned different slices (re-detected)")
	}
	if got := exec.Stats().Counter("race.runs"); got != 1 {
		t.Errorf("race.runs = %d after 3 Races() calls, want 1", got)
	}
}

func TestFacadeStatsCoversAllThreePhases(t *testing.T) {
	prog, err := Compile("stats.mpl", `
shared counter;
sem done = 0;
func w() { counter = counter + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); print(counter); }`)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := prog.RunLogged(Options{Quantum: 1, Output: &bytes.Buffer{}})
	if err != nil {
		t.Fatal(err)
	}
	_ = exec.Races()
	if _, _, err := exec.Controller().CurrentGraph(0); err != nil {
		t.Fatal(err)
	}
	st := exec.Stats()
	for _, name := range []string{
		// preparatory phase
		"compile.funcs", "compile.instrs", "compile.eblocks",
		// execution phase
		"exec.steps", "exec.procs", "exec.syncs",
		"exec.log.records", "exec.log.bytes",
		// debugging phase
		"debug.cache.misses", "race.pairs", "race.runs",
	} {
		if st.Counter(name) == 0 {
			t.Errorf("counter %s = 0, want non-zero", name)
		}
	}
	for _, name := range []string{"compile.total", "exec.run", "debug.build", "debug.emulate"} {
		if st.Timer(name).Count == 0 {
			t.Errorf("timer %s unobserved", name)
		}
	}
	// Stats is idempotent: a second snapshot reports the same log gauges.
	if a, b := st.Counter("exec.log.bytes"), exec.Stats().Counter("exec.log.bytes"); a != b {
		t.Errorf("exec.log.bytes drifted across Stats() calls: %d vs %d", a, b)
	}
	// CompileStats alone carries only the preparatory phase.
	cs := prog.CompileStats()
	if cs.Counter("compile.funcs") == 0 {
		t.Error("CompileStats missing compile.funcs")
	}
	if cs.Counter("exec.steps") != 0 {
		t.Error("CompileStats must not contain execution counters")
	}
	// Both renderings work.
	if !strings.Contains(st.Text(), "exec.steps") {
		t.Error("Text() missing exec.steps")
	}
	if b, err := st.JSON(); err != nil || !bytes.Contains(b, []byte("counters")) {
		t.Errorf("JSON() = %s, %v", b, err)
	}
}

func TestFacadeWorkersAndCacheBoundPlumbed(t *testing.T) {
	// f exceeds the leaf-inline threshold so each call is its own interval.
	prog, err := Compile("wcb.mpl", `
var g;
func f() {
	g = g + 1;
	g = g + 1;
	g = g + 1;
	g = g + 1;
	g = g + 1;
	g = g + 1;
	g = g + 1;
	g = g + 1;
	g = g + 1;
}
func main() { f(); f(); f(); print(g); }`)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := prog.RunLogged(Options{Workers: 2, CacheBound: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := exec.Controller()
	if c.Emulator(0) == nil {
		t.Fatal("controller not built")
	}
	// Walk every interval twice under a bound of 1: the second pass cannot
	// hit (each interval evicts the previous), so evictions must show up.
	var idxs []int
	for i, r := range exec.Log().Books[0].Records {
		if r.Kind == logging.RecPrelog {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) < 2 {
		t.Fatalf("need >= 2 intervals, got %d", len(idxs))
	}
	for pass := 0; pass < 2; pass++ {
		for _, idx := range idxs {
			if _, err := c.Graph(0, idx); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := exec.Stats()
	if st.Counter("debug.cache.evictions") == 0 {
		t.Error("CacheBound: 1 produced no evictions — bound not plumbed")
	}
	if st.Counter("debug.cache.hits") != 0 {
		t.Error("bound-1 walk should never hit")
	}
}

func TestFacadeTraceStreamsScopes(t *testing.T) {
	prog, err := Compile("tr.mpl", `func main() { print(3); }`)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	exec, err := prog.RunLogged(Options{Output: &bytes.Buffer{}, Trace: &trace})
	if err != nil {
		t.Fatal(err)
	}
	_ = exec.Races()
	for _, want := range []string{"begin exec.run", "end   exec.run", "begin debug.build", "end   debug.race"} {
		if !strings.Contains(trace.String(), want) {
			t.Errorf("trace missing %q:\n%s", want, trace.String())
		}
	}
}

// TestFacadeLogRoundTripParity is the satellite round-trip contract: an
// execution reloaded from its persisted log answers debugging queries
// identically to the in-memory one.
func TestFacadeLogRoundTripParity(t *testing.T) {
	prog, err := Compile("parity.mpl", `
shared counter;
sem done = 0;
func w() { counter = counter + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); print(counter); }`)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := prog.RunLogged(Options{Quantum: 1, Output: &bytes.Buffer{}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := exec.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	persisted := append([]byte(nil), buf.Bytes()...)
	loaded, err := prog.ReadLog(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Race detection parity.
	if got, want := loaded.RaceReport(), exec.RaceReport(); got != want {
		t.Errorf("race report diverges after round trip:\n%s\nvs\n%s", got, want)
	}

	// Flowback parity: same focus graph, same rendered fragment.
	for pid := 0; pid < exec.Log().NumProcs(); pid++ {
		g1, idx1, err := exec.Controller().CurrentGraph(pid)
		if err != nil {
			t.Fatal(err)
		}
		g2, idx2, err := loaded.Controller().CurrentGraph(pid)
		if err != nil {
			t.Fatal(err)
		}
		if idx1 != idx2 {
			t.Errorf("pid %d: focus interval %d vs %d", pid, idx1, idx2)
		}
		f1 := controller.RenderFragment(g1, g1.LastNode().ID, 4)
		f2 := controller.RenderFragment(g2, g2.LastNode().ID, 4)
		if f1 != f2 {
			t.Errorf("pid %d: flowback fragment diverges after round trip:\n%s\nvs\n%s", pid, f1, f2)
		}
	}

	// The loaded execution's log is the loaded one, not an empty shell:
	// re-persisting it must reproduce the original bytes.
	var buf2 bytes.Buffer
	if err := loaded.WriteLog(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(persisted, buf2.Bytes()) {
		t.Error("re-persisted log differs from the original")
	}
}

func TestFacadeVet(t *testing.T) {
	prog, err := Compile("racy.mpl", `
shared counter;
sem done = 0;
func w() { counter = counter + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); }`)
	if err != nil {
		t.Fatal(err)
	}
	res := prog.Vet()
	if res == nil || res.Clean() {
		t.Fatalf("expected diagnostics on the racy counter, got %+v", res)
	}
	if !strings.Contains(res.Text(), "[race-candidate]") {
		t.Errorf("vet text missing race candidate:\n%s", res.Text())
	}
	if prog.Vet() != res {
		t.Error("Vet must memoize via the program database")
	}
	if !res.Conflicts.MayConflict(0) {
		t.Errorf("counter must be a conflict candidate: %s", res.Conflicts)
	}
}
