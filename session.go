package ppd

import (
	"context"
	"fmt"
	"io"
	"sync"

	"ppd/internal/controller"
	"ppd/internal/eblock"
)

// Session is a first-class debugging session: one compiled program, one
// logged execution, and the debugging-phase controller with its bounded
// emulation cache, behind a single closable handle. It is the public
// API's unit of work — `ppd serve` manages many of them concurrently —
// and it is context-aware: OpenSessionContext and Rerun honor
// cancellation, and Close releases the emulation cache deterministically
// instead of waiting for the collector.
//
// All methods are safe for concurrent use; queries on one session
// serialize on the session's lock (the underlying Controller is itself
// concurrent-safe, but serializing at the session boundary keeps a
// session's memory use bounded by one query at a time and makes Close
// linearizable with in-flight queries).
type Session struct {
	mu        sync.Mutex
	prog      *Program
	exec      *Execution
	closed    bool
	rerunning bool // a Rerun's logged run is in flight (outside mu)
}

// OpenSession compiles filename/src (through the persistent artifact
// cache when Options.CacheDir or PPD_CACHE_DIR is set), executes it
// logged, and returns the bundled session. The session is valid — and
// most useful — when the program failed or deadlocked; check Failed and
// Deadlocked. Close it when done.
func OpenSession(filename, src string, opts Options) (*Session, error) {
	return OpenSessionContext(context.Background(), filename, src, opts)
}

// OpenSessionContext is OpenSession honoring ctx: the logged run checks
// for cancellation once per scheduling slice, and a cancelled open
// returns ctx's error.
func OpenSessionContext(ctx context.Context, filename, src string, opts Options) (*Session, error) {
	prog, err := CompileOpts(filename, src, eblock.DefaultConfig(), opts)
	if err != nil {
		return nil, err
	}
	exec, err := prog.RunLoggedContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	return &Session{prog: prog, exec: exec}, nil
}

// Program returns the compiled program the session runs.
func (s *Session) Program() *Program { return s.prog }

// Execution returns the session's current logged execution. The returned
// handle is the lower-level phase API; it stays valid until the next
// Rerun or Close replaces or releases it.
func (s *Session) Execution() *Execution {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exec
}

// Failed returns the runtime failure that halted the session's execution,
// or nil. It stays answerable after Close.
func (s *Session) Failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exec.Failed()
}

// Deadlocked reports whether the session's execution ended with blocked
// processes. It stays answerable after Close.
func (s *Session) Deadlocked() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exec.Deadlocked()
}

// Races runs (memoized) race detection over the session's execution.
func (s *Session) Races() ([]*Race, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	return s.exec.Races(), nil
}

// RaceReport renders the detected races with variable names. The report
// is byte-identical to the one the same (source, seed, quantum) produces
// through the Program/Execution API — the serving daemon's acceptance
// contract rides on this.
func (s *Session) RaceReport() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrSessionClosed
	}
	return s.exec.RaceReport(), nil
}

// Vet runs (memoized) static analysis over the session's program.
func (s *Session) Vet() (*VetResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	return s.prog.Vet(), nil
}

// Controller exposes the debugging-phase coordinator for flowback
// queries (Graph, FocusInterval, PrefetchNeighbors, ...).
func (s *Session) Controller() (*Controller, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	return s.exec.Controller(), nil
}

// FocusInterval returns the interval index a debugging session on pid
// naturally starts from (the halted or last interval).
func (s *Session) FocusInterval(pid int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return -1, ErrSessionClosed
	}
	return s.exec.Controller().FocusInterval(pid)
}

// Flowback builds (or serves from the emulation cache) the dynamic graph
// of pid's focus interval and renders the backward dependence fragment of
// its focus node to the given depth — the paper's inverted-tree display
// as a string.
func (s *Session) Flowback(pid, depth int) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrSessionClosed
	}
	ctl := s.exec.Controller()
	g, _, err := ctl.CurrentGraph(pid)
	if err != nil {
		return "", err
	}
	return controller.RenderFragment(g, ctl.FocusNode(g, pid).ID, depth), nil
}

// WhatIf re-executes the e-block interval at record prelogIdx of process
// pid with the named global overridden and reports what changed (§5.7).
// prelogIdx < 0 selects the process's focus interval.
func (s *Session) WhatIf(pid, prelogIdx int, global string, value int64) (*WhatIfResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if prelogIdx < 0 {
		idx, err := s.exec.Controller().FocusInterval(pid)
		if err != nil {
			return nil, err
		}
		prelogIdx = idx
	}
	return s.exec.WhatIf(pid, prelogIdx, global, value)
}

// ReplayTo rebuilds process pid's global state as of record index idx
// (exclusive) by folding the log's prelogs, postlogs, and shared prelogs —
// §5.7's state restoration. Restoration is checkpointed: the controller
// snapshots the fold state every CheckpointEvery records, so stepping a
// restore cursor through a long log costs O(K) per query instead of
// O(run prefix).
func (s *Session) ReplayTo(pid, idx int) (*StateSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	return s.exec.Controller().ReplayTo(pid, idx)
}

// WriteLog persists the execution's log in PPD's binary format.
func (s *Session) WriteLog(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	return s.exec.WriteLog(w)
}

// Stats snapshots the session's observability counters and timers across
// all three phases. It stays answerable after Close — teardown itself is
// observable (Close's cache release shows up as debug.cache.evictions),
// and the serving daemon folds a closing session's final snapshot into
// its /metrics aggregate.
func (s *Session) Stats() *Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exec.Stats()
}

// Rerun replaces the session's execution: the already-compiled program
// runs again under opts (typically a different Seed or Quantum — schedule
// exploration without recompiling), and the debugging-phase state of the
// previous execution, including its emulation cache, is released. The
// previous Execution handle stays readable but shares nothing with the
// session afterwards.
//
// The logged run happens outside the session lock, so queries (and the
// serving daemon's /metrics scrape) keep answering from the current
// execution while the new one is produced; the swap at the end is what
// serializes. A second Rerun while one is in flight returns
// ErrSessionBusy instead of queueing, and a Close that lands mid-run
// wins: the finished run is discarded and Rerun returns ErrSessionClosed.
func (s *Session) Rerun(ctx context.Context, opts Options) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	if s.rerunning {
		s.mu.Unlock()
		return fmt.Errorf("%w: re-run already in flight", ErrSessionBusy)
	}
	s.rerunning = true
	s.mu.Unlock()

	exec, err := s.prog.RunLoggedContext(ctx, opts)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.rerunning = false
	if err != nil {
		return err
	}
	if s.closed {
		// Close won the race and already released the session's
		// debugging-phase memory; release the new execution's too.
		if exec.ctl != nil {
			exec.ctl.DropCache()
		}
		return ErrSessionClosed
	}
	if s.exec.ctl != nil {
		s.exec.ctl.DropCache()
	}
	s.exec = exec
	return nil
}

// StreamRaces is Rerun with the online analysis pipeline attached: the
// already-compiled program runs again under opts with Monitor forced on,
// fn (may be nil) receives each race as the frontier detector finds it —
// while the run is still producing records — and the returned StreamResult
// carries the final canonical race set plus the pipeline's counters. The
// final set is byte-identical (through race.Report) to what the batch
// detector computes from the same log.
//
// Concurrency mirrors Rerun exactly: the monitored run happens outside
// the session lock, a second run in flight returns ErrSessionBusy, and a
// Close that lands mid-run wins — the finished execution is discarded and
// StreamRaces returns ErrSessionClosed (fn may already have observed
// races by then; they were real).
func (s *Session) StreamRaces(ctx context.Context, opts Options, fn func(RaceEvent)) (*StreamResult, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if s.rerunning {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: re-run already in flight", ErrSessionBusy)
	}
	s.rerunning = true
	s.mu.Unlock()

	opts.Monitor = true
	opts.OnRace = fn
	exec, err := s.prog.RunLoggedContext(ctx, opts)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.rerunning = false
	if err != nil {
		return nil, err
	}
	if s.closed {
		if exec.ctl != nil {
			exec.ctl.DropCache()
		}
		return nil, ErrSessionClosed
	}
	if s.exec.ctl != nil {
		s.exec.ctl.DropCache()
	}
	s.exec = exec
	return exec.OnlineResult(), nil
}

// Close releases the session's debugging-phase memory: the controller's
// emulation cache is dropped (reported as debug.cache.evictions) and all
// further queries return ErrSessionClosed. Close is idempotent and safe
// to call concurrently with queries — it waits for the in-flight query
// and the loser of the race observes the closed state.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.exec.ctl != nil {
		s.exec.ctl.DropCache()
	}
	return nil
}
