package ppd

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestSessionLifecycle(t *testing.T) {
	sess, err := OpenSession("crash.mpl", facadeCrash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Failed() == nil {
		t.Fatal("crash program should fail")
	}
	if sess.Deadlocked() {
		t.Error("crash is a failure, not a deadlock")
	}
	if _, err := sess.Races(); err != nil {
		t.Errorf("Races: %v", err)
	}
	frag, err := sess.Flowback(0, 3)
	if err != nil {
		t.Fatalf("Flowback: %v", err)
	}
	if !strings.Contains(frag, "g") {
		t.Errorf("flowback fragment mentions no variable:\n%s", frag)
	}
	// What-if with the default (focus) interval: overriding g to 5 makes
	// the divisor 4, so the failure disappears.
	res, err := sess.WhatIf(0, -1, "g", 5)
	if err != nil {
		t.Fatalf("WhatIf: %v", err)
	}
	if res.Original.Err == nil || res.Modified.Err != nil {
		t.Errorf("what-if: original err %v, modified err %v; want failure → success",
			res.Original.Err, res.Modified.Err)
	}
	var log bytes.Buffer
	if err := sess.WriteLog(&log); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	if log.Len() == 0 {
		t.Error("empty log")
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestSessionClose pins the teardown contract: Close is idempotent, drops
// the emulation cache (observable as debug.cache.evictions), and turns
// every subsequent query into ErrSessionClosed — while Failed, Deadlocked,
// and Stats stay answerable.
func TestSessionClose(t *testing.T) {
	sess, err := OpenSession("crash.mpl", facadeCrash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Populate the emulation cache so Close has something to release.
	if _, err := sess.Flowback(0, 2); err != nil {
		t.Fatal(err)
	}
	before := sess.Stats().Counters["debug.cache.evictions"]
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	after := sess.Stats().Counters["debug.cache.evictions"]
	if after <= before {
		t.Errorf("debug.cache.evictions %d -> %d; Close released nothing", before, after)
	}
	if _, err := sess.Races(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Races after Close = %v, want ErrSessionClosed", err)
	}
	if _, err := sess.RaceReport(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("RaceReport after Close = %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Flowback(0, 2); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Flowback after Close = %v, want ErrSessionClosed", err)
	}
	if _, err := sess.WhatIf(0, -1, "g", 5); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("WhatIf after Close = %v, want ErrSessionClosed", err)
	}
	if err := sess.WriteLog(&bytes.Buffer{}); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("WriteLog after Close = %v, want ErrSessionClosed", err)
	}
	if err := sess.Rerun(context.Background(), Options{}); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Rerun after Close = %v, want ErrSessionClosed", err)
	}
	// Post-mortem reads still work.
	if sess.Failed() == nil {
		t.Error("Failed unanswerable after Close")
	}
	_ = sess.Deadlocked()
}

func TestSessionRerun(t *testing.T) {
	sess, err := OpenSession("crash.mpl", facadeCrash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	first := sess.Execution()
	if err := sess.Rerun(context.Background(), Options{Seed: 3}); err != nil {
		t.Fatalf("Rerun: %v", err)
	}
	if sess.Execution() == first {
		t.Error("Rerun did not replace the execution")
	}
	// The session answers queries against the new execution.
	if _, err := sess.Flowback(0, 2); err != nil {
		t.Errorf("Flowback after Rerun: %v", err)
	}
	// Invalid options leave the current execution in place.
	if err := sess.Rerun(context.Background(), Options{Quantum: -1}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Rerun with bad options = %v, want ErrInvalidOptions", err)
	}
	if _, err := sess.Races(); err != nil {
		t.Errorf("session unusable after failed Rerun: %v", err)
	}
}

// TestSessionConcurrentQueries drives one session from many goroutines
// under the race detector: queries serialize on the session lock and a
// concurrent Close linearizes with them.
func TestSessionConcurrentQueries(t *testing.T) {
	sess, err := OpenSession("crash.mpl", facadeCrash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				switch i % 4 {
				case 0:
					_, _ = sess.Races()
				case 1:
					_, _ = sess.Flowback(0, 2)
				case 2:
					_, _ = sess.RaceReport()
				case 3:
					_ = sess.Stats()
				}
			}
		}(i)
	}
	wg.Wait()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// gateWriter blocks a logged run at its first print until released,
// giving tests a deterministic window in which a Rerun is in flight.
type gateWriter struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateWriter) Write(p []byte) (int, error) {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return len(p), nil
}

const printingSrc = `func main() { print(1); print(2); }`

// TestRerunDoesNotBlockQueries pins the Rerun lock discipline: the
// logged run happens outside the session lock, so queries keep answering
// from the current execution while the new one is produced (holding the
// lock across the run stalled Stats — and the daemon's /metrics — for
// the whole re-execution), and a second Rerun is refused with
// ErrSessionBusy instead of queueing.
func TestRerunDoesNotBlockQueries(t *testing.T) {
	sess, err := OpenSession("print.mpl", printingSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	first := sess.Execution()

	gate := &gateWriter{entered: make(chan struct{}), release: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		done <- sess.Rerun(context.Background(), Options{Output: gate})
	}()
	<-gate.entered // the re-run is now mid-execution

	if st := sess.Stats(); st == nil {
		t.Error("Stats during in-flight Rerun returned nil")
	}
	if _, err := sess.Races(); err != nil {
		t.Errorf("Races during in-flight Rerun: %v", err)
	}
	if got := sess.Execution(); got != first {
		t.Error("execution swapped before the re-run finished")
	}
	if err := sess.Rerun(context.Background(), Options{}); !errors.Is(err, ErrSessionBusy) {
		t.Errorf("concurrent Rerun = %v, want ErrSessionBusy", err)
	}

	close(gate.release)
	if err := <-done; err != nil {
		t.Fatalf("Rerun: %v", err)
	}
	if sess.Execution() == first {
		t.Error("Rerun did not replace the execution")
	}
}

// TestCloseDuringRerun: a Close landing while a Rerun's logged run is in
// flight wins — the finished run is discarded (its debugging-phase
// memory released) and Rerun reports ErrSessionClosed.
func TestCloseDuringRerun(t *testing.T) {
	sess, err := OpenSession("print.mpl", printingSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gate := &gateWriter{entered: make(chan struct{}), release: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		done <- sess.Rerun(context.Background(), Options{Output: gate})
	}()
	<-gate.entered
	if err := sess.Close(); err != nil {
		t.Fatalf("Close during Rerun: %v", err)
	}
	close(gate.release)
	if err := <-done; !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Rerun overlapping Close = %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Races(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Races after Close = %v, want ErrSessionClosed", err)
	}
}

// TestCompileErrSentinel: preparatory-phase failures carry ErrCompile;
// infrastructure outcomes of the run phase do not, so callers (and the
// daemon's error mapping) can tell "fix the program" from "the run
// didn't happen".
func TestCompileErrSentinel(t *testing.T) {
	_, err := Compile("bad.mpl", "func main( {")
	if !errors.Is(err, ErrCompile) {
		t.Errorf("Compile syntax error = %v, want ErrCompile", err)
	}
	if _, err := OpenSession("bad.mpl", "func main( {", Options{}); !errors.Is(err, ErrCompile) {
		t.Errorf("OpenSession syntax error = %v, want ErrCompile", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OpenSessionContext(ctx, "print.mpl", printingSrc, Options{}); errors.Is(err, ErrCompile) {
		t.Errorf("cancelled open = %v; run-phase outcome must not carry ErrCompile", err)
	}
}

// TestOpenSessionCancellation: a context cancelled before the run starts
// aborts the logged execution at the first scheduling slice.
func TestOpenSessionCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// An infinite loop would never finish without the per-slice check.
	src := `
var spin = 1;
func main() { while (spin > 0) { spin = spin + 1; spin = spin - 1; } }`
	if _, err := OpenSessionContext(ctx, "spin.mpl", src, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("OpenSessionContext with cancelled ctx = %v, want context.Canceled", err)
	}
	prog, err := Compile("spin.mpl", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.RunContext(ctx, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext with cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := prog.RunLoggedContext(ctx, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunLoggedContext with cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestSessionCompatibleWithDirectAPI: the race report through a Session is
// byte-identical to the Program/Execution path for the same inputs.
func TestSessionCompatibleWithDirectAPI(t *testing.T) {
	src := `
shared counter;
sem done = 0;
func w() { counter = counter + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); }`
	opts := Options{Seed: 5, Quantum: 1}

	prog, err := Compile("racy.mpl", src)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := prog.RunLogged(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := exec.RaceReport()

	sess, err := OpenSession("racy.mpl", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got, err := sess.RaceReport()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("session race report diverged from direct API:\n--- direct\n%s\n--- session\n%s", want, got)
	}
}
