package ppd

import (
	"context"
	"sync/atomic"
	"testing"

	"ppd/internal/workloads"
)

// monitoredWorkload compiles and runs a workload with the online pipeline
// attached and returns the execution.
func monitoredWorkload(t *testing.T, wl *workloads.Workload, opts Options) *Execution {
	t.Helper()
	prog, err := Compile(wl.Name+".mpl", wl.Src)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := prog.RunLogged(opts)
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

// TestMonitoredRunMatchesBatch is the public-API face of the oracle
// contract: a monitored run's online race report is byte-identical to the
// batch detector's report over the very same log.
func TestMonitoredRunMatchesBatch(t *testing.T) {
	for _, wl := range []*workloads.Workload{
		workloads.RacyCounter(3, 20, false),
		workloads.RacyCounter(2, 8, true),
		workloads.Relay(3, 30),
	} {
		for _, opts := range []Options{
			{Seed: 0, Quantum: 1, Monitor: true},
			{Seed: 5, Quantum: 7, Monitor: true, StreamBatch: 3},
		} {
			exec := monitoredWorkload(t, wl, opts)
			if !exec.Monitored() {
				t.Fatalf("%s: run was not monitored", wl.Name)
			}
			online, batch := exec.OnlineRaceReport(), exec.RaceReport()
			if online != batch {
				t.Errorf("%s (seed=%d quantum=%d batch=%d): online report diverges\n--- online\n%s--- batch\n%s",
					wl.Name, opts.Seed, opts.Quantum, opts.StreamBatch, online, batch)
			}
		}
	}
}

// TestOnRaceFiresDuringRun pins the streaming property the whole PR is
// for: the callback observes races while the execution is still running,
// and every callback race is in the final set.
func TestOnRaceFiresDuringRun(t *testing.T) {
	var fired atomic.Int64
	exec := monitoredWorkload(t, workloads.RacyCounter(3, 40, false),
		Options{Quantum: 1, StreamBatch: 1, OnRace: func(ev RaceEvent) { fired.Add(1) }})
	if fired.Load() == 0 {
		t.Fatal("OnRace never fired on a racy run")
	}
	if got := int64(exec.OnlineResult().Online); got < fired.Load() {
		t.Errorf("callback fired %d times but result counted %d online races", fired.Load(), got)
	}
	if len(exec.OnlineRaces()) == 0 {
		t.Error("no races in the final online set")
	}
}

// TestStopAtFirstRaceAborts pins early abort: a long racy run cancelled
// at the first race produces a much shorter log than the full run, the
// execution is marked, and the triggering races are reported. The partial
// log is still well-formed — the batch detector agrees with the online
// set on it.
func TestStopAtFirstRaceAborts(t *testing.T) {
	wl := workloads.RacyTicker(3, 300)
	full := monitoredWorkload(t, wl, Options{Quantum: 3})
	fullSteps := full.Stats().Counter("exec.steps")

	aborted := monitoredWorkload(t, wl, Options{Quantum: 3, StopAtFirstRace: true})
	if !aborted.StoppedAtRace() {
		t.Fatal("StopAtFirstRace run did not stop at a race")
	}
	if len(aborted.OnlineRaces()) == 0 {
		t.Fatal("aborted run reports no races")
	}
	gotSteps := aborted.Stats().Counter("exec.steps")
	if fullSteps == 0 || gotSteps == 0 {
		t.Fatalf("exec.steps counter missing (full=%d, aborted=%d)", fullSteps, gotSteps)
	}
	if gotSteps*2 > fullSteps {
		t.Errorf("aborted run executed %d steps vs %d for the full run; the abort is not early", gotSteps, fullSteps)
	}
	if online, batch := aborted.OnlineRaceReport(), aborted.RaceReport(); online != batch {
		t.Errorf("partial-log online report diverges from batch:\n--- online\n%s--- batch\n%s", online, batch)
	}
}

// TestSessionStreamRaces drives the session-level API: the monitored
// re-run swaps in like Rerun, the callback sees races live, and the
// returned result matches the session's batch report afterwards.
func TestSessionStreamRaces(t *testing.T) {
	wl := workloads.RacyCounter(2, 10, false)
	sess, err := OpenSession(wl.Name+".mpl", wl.Src, Options{Quantum: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	var fired atomic.Int64
	res, err := sess.StreamRaces(context.Background(), Options{Seed: 2, Quantum: 1},
		func(ev RaceEvent) { fired.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) == 0 || fired.Load() == 0 {
		t.Fatalf("StreamRaces found %d races, callback fired %d times", len(res.Races), fired.Load())
	}
	batch, err := sess.RaceReport()
	if err != nil {
		t.Fatal(err)
	}
	if online := sess.Execution().OnlineRaceReport(); online != batch {
		t.Errorf("session online report diverges from batch:\n--- online\n%s--- batch\n%s", online, batch)
	}

	// The session stays fully usable: the swap behaved like Rerun.
	if _, err := sess.Races(); err != nil {
		t.Errorf("Races after StreamRaces: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := sess.StreamRaces(context.Background(), Options{}, nil); err != ErrSessionClosed {
		t.Errorf("StreamRaces on closed session = %v, want ErrSessionClosed", err)
	}
}

// TestStreamCountersInStats pins the observability satellite: a monitored
// execution's Stats carry the stream.* counters.
func TestStreamCountersInStats(t *testing.T) {
	exec := monitoredWorkload(t, workloads.Relay(3, 40), Options{Quantum: 7, Monitor: true})
	st := exec.Stats()
	if st.Counter("stream.batches") == 0 {
		t.Error("stream.batches counter missing or zero")
	}
	if st.Counter("stream.frontier.highwater") == 0 {
		t.Error("stream.frontier.highwater counter missing or zero")
	}
	if st.Counter("stream.events.retired") == 0 {
		t.Error("stream.events.retired counter missing or zero")
	}
	// Relay is race-free: the online counter must exist as a key even at
	// zero — snapshot merging, not absence.
	if n := st.Counter("stream.races.online"); n != 0 {
		t.Errorf("stream.races.online = %d on a race-free workload", n)
	}
	racy := monitoredWorkload(t, workloads.RacyCounter(2, 10, false), Options{Quantum: 1, Monitor: true})
	if racy.Stats().Counter("stream.races.online") == 0 {
		t.Error("stream.races.online counter missing on a racy run")
	}
}
