// An off-by-one the abstract interpreter catches: the loop stays inside
// ring[0..7], then the final read indexes slot 8 of an 8-element array.
var ring[8];
func main() {
	var i = 0;
	while (i < 8) {
		ring[i] = i * i;
		i = i + 1;
	}
	print(ring[i]);
}
