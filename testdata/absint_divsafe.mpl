// Divisions the abstract interpreter proves safe: cnt is guarded into
// [1,+inf) before the average, and the constant table size never
// reaches zero. Both divisions earn fusion certificates, not
// diagnostics.
var scale = 4;
func avg(sum int, cnt int) int {
	if (cnt < 1) { return 0; }
	return sum / cnt;
}
func main() {
	var total = 0;
	var i = 1;
	while (i <= 10) {
		total = total + i / scale;
		i = i + 1;
	}
	print(avg(total, i - 1));
}
