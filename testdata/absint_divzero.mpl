// A division the abstract interpreter proves always traps: base starts
// at 8 and the loop drives it to exactly 0 before the division.
func main() {
	var base = 8;
	while (base > 0) {
		base = base - 2;
	}
	print(100 / base);
}
