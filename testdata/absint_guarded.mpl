// A fully lock-guarded counter: every access to hits — in the workers
// and in main — holds the binary semaphore mu, so the lockset analysis
// prunes it from the race candidates.
shared hits;
sem mu = 1;
sem done = 0;
func w() {
	var i = 0;
	while (i < 4) {
		P(mu);
		hits = hits + 1;
		V(mu);
		i = i + 1;
	}
	V(done);
}
func main() {
	spawn w();
	spawn w();
	P(done);
	P(done);
	P(mu);
	print(hits);
	V(mu);
}
