// A bug for flowback: scale() misclassifies input 25, leading to a zero
// divisor downstream.
var calibration = 5;
func scale(v int) int {
	if (v < 25) { return v / calibration; }
	return v / calibration - 5;
}
func main() {
	var reading = 25;
	var factor = scale(reading);
	var normalized = 100 / factor;
	print(normalized);
}
