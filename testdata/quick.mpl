// A tiny MPL program: compute and print a factorial.
func fact(n int) int {
	if (n <= 1) { return 1; }
	return n * fact(n - 1);
}
func main() {
	print("5! = ", fact(5));
}
