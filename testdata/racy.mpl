// Two workers increment a shared counter without a mutex: a race.
shared counter;
sem done = 0;
func w() {
	var i = 0;
	while (i < 3) {
		counter = counter + 1;
		i = i + 1;
	}
	V(done);
}
func main() {
	spawn w();
	spawn w();
	P(done);
	P(done);
	print(counter);
}
